//! Fuzzing the BLIF reader: `parse_blif` is the first thing that touches
//! bytes from outside the workspace, so it must be total — every input,
//! however hostile, yields `Ok(network)` or an `Err` pointing at a real
//! source line. It must never panic.

use logic::parse_blif;
use proptest::prelude::*;

/// Upper bound on the 1-based line an error may point at: one past the
/// last physical line (continuation joining attributes a run of `\`-lines
/// to its first physical line, so every recorded line number is a line
/// that exists in the input; +1 tolerates a trailing newline edge).
fn line_bound(text: &str) -> usize {
    text.lines().count() + 1
}

/// Fragments that steer random soup toward the parser's deeper paths.
fn blif_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(".model m".to_string()),
        Just(".inputs a b c".to_string()),
        Just(".outputs y".to_string()),
        Just(".names a b y".to_string()),
        Just(".names y".to_string()),
        Just(".latch a y re clk 0".to_string()),
        Just(".subckt foo".to_string()),
        Just(".end".to_string()),
        Just("11 1".to_string()),
        Just("1- 0".to_string()),
        Just("-".to_string()),
        Just("1".to_string()),
        Just("# comment".to_string()),
        Just("\\".to_string()),
        Just("".to_string()),
        // printable ASCII junk
        proptest::collection::vec(0x20u8..0x7f, 0..20).prop_map(|b| String::from_utf8(b).unwrap()),
        // arbitrary unicode junk (lossy decode of raw bytes)
        proptest::collection::vec(any::<u8>(), 0..12)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw byte soup (lossily decoded): total, with in-range error lines.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1, "error line must be 1-based: {e}");
            prop_assert!(
                e.line() <= line_bound(&text),
                "error line {} out of range for {} input lines",
                e.line(),
                text.lines().count()
            );
        }
    }

    /// Line soup built from BLIF-shaped fragments: reaches the directive
    /// and cover parsing paths that uniform bytes almost never hit.
    #[test]
    fn structured_soup_never_panics(
        lines in proptest::collection::vec(blif_fragment(), 0..40)
    ) {
        let text = lines.join("\n");
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1, "error line must be 1-based: {e}");
            prop_assert!(e.line() <= line_bound(&text));
        }
    }

    /// Mutations of a valid model: flip a byte anywhere in a well-formed
    /// BLIF file; the parser must still be total and point in range.
    #[test]
    fn mutated_valid_model_never_panics(pos in 0usize..200, byte in any::<u8>()) {
        let base = "\
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";
        let mut bytes = base.as_bytes().to_vec();
        let i = pos % bytes.len();
        bytes[i] = byte;
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1);
            prop_assert!(e.line() <= line_bound(&text));
        }
    }
}

/// The two error paths that used to report placeholder line 0.
#[test]
fn undriven_output_points_at_the_outputs_line() {
    let text = ".model m\n.inputs a\n.outputs ghost\n.end\n";
    let e = parse_blif(text).unwrap_err();
    assert_eq!(
        e.line(),
        3,
        "undriven output must cite the .outputs line: {e}"
    );
    assert!(e.to_string().contains("ghost"));
}

#[test]
fn cycle_error_points_at_a_names_block() {
    let text = ".model m\n.inputs a\n.outputs y\n.names y x\n1 1\n.names x y\n1 1\n.end\n";
    let e = parse_blif(text).unwrap_err();
    assert!(
        e.line() == 4 || e.line() == 6,
        "cycle must cite a .names line: {e}"
    );
    assert!(e.to_string().contains("cycle"));
}

/// Deterministic adversarial corpus under an explicit `catch_unwind`:
/// each entry targets a specific parse path that once indexed or
/// `unwrap`ped (bdslint's panic-surface rule now bans those outright,
/// and this test pins the behavioural claim independently of proptest's
/// harness).
#[test]
fn adversarial_corpus_never_panics() {
    let corpus: &[&str] = &[
        // Directive with no tokens after comment stripping.
        "#\n   # only comments\n\t\n",
        // `.names` with nothing after it (no output token).
        ".model m\n.names\n.end\n",
        // Cover rows with the wrong arity in both constant and gate form.
        ".model m\n.inputs a\n.outputs y\n.names y\n1 1 1\n.end\n",
        ".model m\n.inputs a\n.outputs y\n.names a y\n1\n.end\n",
        // Mask width mismatch and bad cover values.
        ".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n",
        ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n",
        // Undefined fanin, self-loop, and a two-node cycle.
        ".model m\n.inputs a\n.outputs y\n.names ghost y\n1 1\n.end\n",
        ".model m\n.outputs y\n.names y y\n1 1\n.end\n",
        ".model m\n.outputs y\n.names x y\n1 1\n.names y x\n1 1\n.end\n",
        // Continuation-line pathologies: trailing `\` at EOF, a file of
        // only continuations, and a continuation into a directive.
        ".model m\\",
        "\\\n\\\n\\",
        ".inputs a \\\n.outputs y\n",
        // A 17-input cover (over the truth-table limit).
        ".model m\n.inputs a b c d e f g h i j k l n o p q r\n.outputs y\n.names a b c d e f g h i j k l n o p q r y\n11111111111111111 1\n.end\n",
        // Null bytes and CRLF line endings.
        ".model m\0\n.inputs a\r\n.outputs y\r\n.names a y\r\n1 1\r\n.end\r\n",
        // Unknown and unsupported directives.
        ".model m\n.clock c\n.end\n",
        ".model m\n.gate AND a=x b=y o=z\n.end\n",
    ];
    for (i, text) in corpus.iter().enumerate() {
        let outcome = std::panic::catch_unwind(|| parse_blif(text).map(|n| n.len()));
        assert!(
            outcome.is_ok(),
            "parse_blif panicked on corpus[{i}]: {text:?}"
        );
    }
}

/// Write-side totality: any network the parser accepts must serialize
/// and reparse without panicking, and the reparse must succeed.
#[test]
fn writer_is_total_on_parsed_fragments() {
    let accepted: &[&str] = &[
        ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
        ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
        ".model m\n.inputs a\n.outputs y z\n.names y\n1\n.names z\n.end\n",
        ".model m\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n",
    ];
    for (i, text) in accepted.iter().enumerate() {
        let net = parse_blif(text).unwrap_or_else(|e| panic!("corpus[{i}] must parse: {e}"));
        let outcome = std::panic::catch_unwind(|| logic::write_blif(&net));
        let written = outcome.unwrap_or_else(|_| panic!("write_blif panicked on corpus[{i}]"));
        parse_blif(&written).unwrap_or_else(|e| panic!("round-trip of corpus[{i}] failed: {e}"));
    }
}
