//! Quality-side ablation of the design choices listed in DESIGN.md §7:
//! prints decomposed node counts under parameter sweeps so the impact of
//! each knob on result quality (not just runtime) is visible.

use bdsmaj::{bds_maj, BdsMajOptions, CofactorOp};
use circuits::suite::benchmark;
use logic::equiv_sim;

fn run(name: &str, opts: &BdsMajOptions) -> (usize, usize, bool) {
    let net = benchmark(name).expect("known benchmark");
    let out = bds_maj(&net, opts);
    let counts = out.network().gate_counts();
    let ok = equiv_sim(&net, out.network(), 4, 0xAB1A).is_ok();
    (counts.decomposition_total(), counts.maj, ok)
}

fn main() {
    let names = ["alu2", "Wallace 16 bit", "Div 18 bit", "4-Op ADD 16 bit"];

    println!("== m-dominator candidate cap (default 8) ==");
    for cap in [1usize, 2, 8, 32] {
        print!("cap {cap:>3}:");
        for name in names {
            let mut opts = BdsMajOptions::default();
            opts.maj.max_candidates = cap;
            let (total, maj, ok) = run(name, &opts);
            print!(
                "  {name}={total} (maj {maj}){}",
                if ok { "" } else { " FAIL" }
            );
        }
        println!();
    }

    println!("\n== balancing iteration limit (paper: 5) ==");
    for iters in [0usize, 1, 5, 20] {
        print!("iters {iters:>2}:");
        for name in names {
            let mut opts = BdsMajOptions::default();
            opts.maj.max_iterations = iters;
            let (total, maj, ok) = run(name, &opts);
            print!(
                "  {name}={total} (maj {maj}){}",
                if ok { "" } else { " FAIL" }
            );
        }
        println!();
    }

    println!("\n== global sizing factor k (paper: 1.6) ==");
    for k in [1.1f64, 1.6, 2.5, 4.0] {
        print!("k {k:>3.1}:");
        for name in names {
            let mut opts = BdsMajOptions::default();
            opts.maj.global_k = k;
            let (total, maj, ok) = run(name, &opts);
            print!(
                "  {name}={total} (maj {maj}){}",
                if ok { "" } else { " FAIL" }
            );
        }
        println!();
    }

    println!("\n== generalized-cofactor operator (paper cites both) ==");
    for (label, op) in [
        ("restrict", CofactorOp::Restrict),
        ("constrain", CofactorOp::Constrain),
    ] {
        print!("{label:>9}:");
        for name in names {
            let mut opts = BdsMajOptions::default();
            opts.maj.cofactor = op;
            let (total, maj, ok) = run(name, &opts);
            print!(
                "  {name}={total} (maj {maj}){}",
                if ok { "" } else { " FAIL" }
            );
        }
        println!();
    }

    println!("\n== partition support bound (default 12) ==");
    for bound in [6usize, 10, 12, 16] {
        print!("supp {bound:>2}:");
        for name in names {
            let mut opts = BdsMajOptions::default();
            opts.engine.partition.max_support = bound;
            let (total, maj, ok) = run(name, &opts);
            print!(
                "  {name}={total} (maj {maj}){}",
                if ok { "" } else { " FAIL" }
            );
        }
        println!();
    }
}
