//! Perf-baseline emitter: runs BDD-kernel op storms and the Table I suite,
//! then writes `BENCH_kernels.json` so the kernel's performance trajectory
//! is tracked from PR to PR.
//!
//! Usage: `cargo run --release -p bench --bin kernels [-- --subset N] [--out PATH] [--jobs N]`
//! `--subset N` restricts the suite portion to the first N benchmarks (CI
//! smoke runs use `--subset 3`). `--jobs N` sets the worker count for the
//! parallel leg of the suite sections (default: `BENCH_JOBS` or all
//! cores); the suite is always timed sequentially first, so the JSON
//! carries the sequential-vs-parallel wall-clock pair and the speedup is
//! tracked like every other perf number.

use bdd::{ConvergeConfig, GcConfig, JobBudget, Manager, Ref, SiftConfig};
use bench::{engine_options_for, parse_jobs, pool, timed, ReorderPolicy};
use circuits::suite::paper_suite;
use logic::{partition, PartitionConfig};
use std::fmt::Write as _;

/// An op storm: builds a dense function family, returning total operations.
fn ite_storm(m: &mut Manager, rounds: u32) -> u64 {
    let vars: Vec<bdd::Ref> = (0..14).map(|i| m.var(i)).collect();
    let mut ops = 0u64;
    let mut acc = m.one();
    for r in 0..rounds {
        for w in vars.windows(3) {
            let t = m.ite(w[0], w[1], w[2]);
            acc = m.ite(t, acc, w[(r as usize) % 3]);
            ops += 2;
        }
    }
    ops
}

fn and_storm(m: &mut Manager, rounds: u32) -> u64 {
    let vars: Vec<bdd::Ref> = (0..14).map(|i| m.var(i)).collect();
    let mut ops = 0u64;
    for r in 0..rounds {
        let mut acc = m.one();
        for (i, &v) in vars.iter().enumerate() {
            let operand = if (i + r as usize).is_multiple_of(2) {
                v
            } else {
                !v
            };
            acc = m.and(acc, operand);
            let alt = m.or(acc, v);
            acc = m.and(acc, alt);
            ops += 3;
        }
    }
    ops
}

fn xor_storm(m: &mut Manager, rounds: u32) -> u64 {
    let vars: Vec<bdd::Ref> = (0..14).map(|i| m.var(i)).collect();
    let mut ops = 0u64;
    let mut acc = m.zero();
    for r in 0..rounds {
        for (i, &v) in vars.iter().enumerate() {
            acc = m.xor(acc, if (i ^ r as usize) & 1 == 0 { v } else { !v });
            ops += 1;
        }
        let parity = m.xor_all(vars.iter().copied());
        acc = m.xor(acc, parity);
        ops += vars.len() as u64;
    }
    ops
}

struct StormResult {
    name: &'static str,
    ops: u64,
    micros: u128,
    hit_rate: f64,
    nodes: usize,
}

struct GcStormResult {
    ops: u64,
    micros: u128,
    lookups: u64,
    reclaimed: u64,
    collections: u64,
    peak_nodes: usize,
    final_nodes: usize,
    live_nodes: usize,
    garbage_estimate: usize,
    hit_rate: f64,
}

/// The reclamation storm: a protected 8-accumulator working set over 24
/// variables with heavy churn and threshold-triggered collections — the
/// memory pattern of a long decomposition flow. Without the collector the
/// arena would grow monotonically with `ops`; with it, `final_nodes` and
/// `peak_nodes` stay within a constant factor of `live_nodes`.
// bdslint: allow(protect-release) -- the vars/accs roots live for the
// whole storm and die with the manager at the end of this function
fn gc_storm(rounds: u32) -> GcStormResult {
    let mut m = Manager::new();
    m.set_gc_config(GcConfig {
        dead_fraction: 0.25,
        min_nodes: 1 << 12,
    });
    let vars: Vec<Ref> = (0..24)
        .map(|i| {
            let v = m.var(i);
            m.protect(v)
        })
        .collect();
    let mut accs: Vec<Ref> = vars.iter().take(8).map(|&v| m.protect(v)).collect();
    let mut ops = 0u64;
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let ((), elapsed) = timed(|| {
        for _ in 0..rounds {
            for i in 0..accs.len() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = accs[i];
                let b = accs[(x as usize >> 8) % accs.len()];
                let v = vars[(x as usize >> 16) % vars.len()];
                let r = match x % 5 {
                    0 => m.and(a, v),
                    1 => m.or(a, v),
                    2 => m.xor(a, v),
                    3 => m.ite(v, a, b),
                    _ => m.ite(a, v, b),
                };
                ops += 1;
                let r = if m.size(r) > 500 { v } else { r };
                m.release(accs[i]);
                accs[i] = m.protect(r);
                m.maybe_collect();
            }
        }
    });
    let stats = m.cache_stats();
    GcStormResult {
        ops,
        micros: elapsed.as_micros(),
        lookups: stats.lookups,
        reclaimed: stats.reclaimed_total,
        collections: stats.collections,
        peak_nodes: stats.peak_nodes,
        final_nodes: m.num_nodes(),
        live_nodes: m.live_nodes(),
        garbage_estimate: stats.garbage_estimate,
        hit_rate: stats.hit_rate(),
    }
}

struct SiftStormResult {
    nodes_before: usize,
    nodes_after: usize,
    swaps: usize,
    vars_sifted: usize,
    groups: usize,
    micros: u128,
    /// The same storm sifted to a fixpoint instead of one pass.
    converge_nodes: usize,
    converge_swaps: usize,
    converge_passes: usize,
    converge_micros: u128,
}

/// The reordering storm: an order-hostile sum of pair-products
/// (`x0·x8 + x1·x9 + ... + x7·x15`), exponential under the interleaved
/// identity order and linear once sifting parks each pair adjacently.
/// Run twice from the same start order: one default sift pass (the
/// tracked wall-clock — the O(1) swap deltas show up here) and one
/// converging sift.
// bdslint: allow(protect-release) -- the storm function stays rooted
// across both sift passes and dies with its manager
fn sift_storm() -> SiftStormResult {
    let build = |m: &mut Manager| {
        let mut f = m.zero();
        for i in 0..8 {
            let a = m.var(i);
            let b = m.var(i + 8);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f)
    };
    let mut m = Manager::new();
    let f = build(&mut m);
    let nodes_before = m.size(f);
    let (report, elapsed) = timed(|| m.sift(&SiftConfig::default()));
    let nodes_after = m.size(f);
    let mut mc = Manager::new();
    let fc = build(&mut mc);
    let (creport, celapsed) = timed(|| mc.sift_to_fixpoint(&ConvergeConfig::default()));
    SiftStormResult {
        nodes_before,
        nodes_after,
        swaps: report.swaps,
        vars_sifted: report.vars_sifted,
        groups: report.groups,
        micros: elapsed.as_micros(),
        converge_nodes: mc.size(fc),
        converge_swaps: creport.swaps,
        converge_passes: creport.passes,
        converge_micros: celapsed.as_micros(),
    }
}

struct ParApplyRun {
    threads: usize,
    ops: u64,
    lookups: u64,
    hit_rate: f64,
    /// Shared (L2) cache probes — L1 misses that consulted the
    /// store-level cache (the storm's cross-thread reuse channel).
    shared_lookups: u64,
    shared_hits: u64,
    shared_hit_rate: f64,
    /// Results the workers published into the shared cache.
    shared_insertions: u64,
    /// Tasks executed from another worker's deque — the load-balancing
    /// the fork-join scheduler actually performed (0 at `threads = 1`).
    steals: u64,
    micros: u128,
    result_nodes: usize,
}

struct ParApplyResult {
    cone_nodes: usize,
    /// Fixed L2 capacity (slot count) of each run's store.
    shared_cache_entries: usize,
    runs: Vec<ParApplyRun>,
}

/// The forked-apply storm: a pool of wide cones (cross-products of
/// *distant* variables, which under the natural order are hundreds of
/// shared nodes — comfortably past the fork granularity cutoff)
/// combined by `par_and`/`par_xor`/`par_ite` at increasing widths. Each
/// width runs in a fresh manager with a cold computed cache and a
/// `threads − 1`-permit budget, so `threads = 1` *is* the sequential
/// kernel and is the baseline the wider runs compare against. Worker
/// cache counters fold back into the manager after every join, so
/// `cache_lookups` is total recursion work across all threads and
/// lookups-per-second is the tracked rate. Canonicity
/// makes a cross-width oracle free: one function under one variable
/// order has exactly one ROBDD, so the final result's node count must
/// agree at every width.
fn par_apply_storm() -> ParApplyResult {
    const NVARS: u32 = 16;
    let seed = |m: &mut Manager| -> Vec<Ref> {
        let vars: Vec<Ref> = (0..NVARS).map(|i| m.var(i)).collect();
        let half = (NVARS / 2) as usize;
        let mut pool = Vec::new();
        let (mut acc, mut alt) = (m.zero(), m.one());
        for i in 0..half {
            let p = m.and(vars[i], vars[i + half]);
            acc = m.xor(acc, p);
            let q = m.or(vars[i], vars[(i + half + 1) % NVARS as usize]);
            alt = m.maj(alt, q, p);
            pool.push(acc);
            pool.push(alt);
        }
        pool.extend(vars);
        pool
    };
    let mut cone_nodes = 0usize;
    let mut shared_cache_entries = 0usize;
    let mut oracle_nodes: Option<usize> = None;
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = Manager::new();
        m.set_job_budget(Some(JobBudget::new(threads - 1)));
        let pool = seed(&mut m);
        cone_nodes = m.shared_size(&pool);
        assert!(
            cone_nodes >= 512,
            "par_apply seed shrank to {cone_nodes} shared nodes — the storm \
             would silently stop exercising the forked path"
        );
        let seeded = m.cache_stats();
        let mut ops = 0u64;
        let (last, elapsed) = timed(|| {
            let n = pool.len();
            let mut acc = pool[0];
            for i in 0..n {
                acc = match i % 3 {
                    0 => m.par_and(acc, pool[(i * 7 + 3) % n]),
                    1 => m.par_xor(acc, pool[(i * 5 + 1) % n]),
                    _ => m.par_ite(pool[(i * 3 + 2) % n], acc, pool[(i * 11 + 5) % n]),
                };
                ops += 1;
            }
            acc
        });
        let result_nodes = m.size(last);
        match oracle_nodes {
            None => oracle_nodes = Some(result_nodes),
            Some(want) => assert_eq!(
                result_nodes, want,
                "canonicity oracle: par_apply result size diverged at threads={threads}"
            ),
        }
        let stats = m.cache_stats();
        shared_cache_entries = stats.shared_cache_entries;
        let lookups = stats.lookups - seeded.lookups;
        let hits = stats.hits - seeded.hits;
        let shared_lookups = stats.shared_lookups - seeded.shared_lookups;
        let shared_hits = stats.shared_hits - seeded.shared_hits;
        runs.push(ParApplyRun {
            threads,
            ops,
            lookups,
            hit_rate: hits as f64 / lookups.max(1) as f64,
            shared_lookups,
            shared_hits,
            shared_hit_rate: shared_hits as f64 / shared_lookups.max(1) as f64,
            shared_insertions: stats.shared_insertions - seeded.shared_insertions,
            steals: stats.par_steals - seeded.par_steals,
            micros: elapsed.as_micros(),
            result_nodes,
        });
    }
    ParApplyResult {
        cone_nodes,
        shared_cache_entries,
        runs,
    }
}

struct SiftBenchRow {
    name: &'static str,
    /// Summed supernode BDD sizes under the partition's static order.
    static_nodes: usize,
    /// The same sum after one global sift pass over the protected cones.
    sifted_nodes: usize,
    swaps: usize,
    /// Rooted (shared-DAG) size after the single pass — the quantity
    /// sifting actually minimizes; the cone *sum* above double-counts
    /// shared nodes and is not monotone under reordering.
    sifted_rooted: usize,
    /// Wall-clock of the single sift pass (the headline O(1)-delta
    /// number; compare against the committed baseline).
    sift_sec: f64,
    /// The cone sum after continuing the same manager to a fixpoint.
    converged_nodes: usize,
    /// Rooted size at the fixpoint. The fixpoint runs as a continuation
    /// of the single pass and every pass is monotone, so this is ≤
    /// `sifted_rooted` on every benchmark by construction.
    converged_rooted: usize,
    converge_swaps: usize,
    converge_passes: usize,
    converge_sec: f64,
    /// Whether the full Table I flow under `--reorder sift` passed the
    /// random-simulation oracle for both engines.
    verified: bool,
    /// The same oracle check under `--reorder sift-converge`.
    converge_verified: bool,
    sec: f64,
}

/// Per-benchmark static-vs-sift-vs-converged cone sizes plus
/// oracle-checked Table I runs under the sift and sift-converge policies.
/// Everything here is **timed and sequential** — `sift_sec`,
/// `converge_sec` and `flow_sec` are tracked perf baselines, and
/// wall-clock measured under multi-core contention would not be
/// comparable across PRs (the suite section above is where the pool's
/// speedup is measured).
fn sift_suite(take: usize) -> Vec<SiftBenchRow> {
    let suite = paper_suite();
    let engine = engine_options_for(ReorderPolicy::Sift);
    let engine_converge = engine_options_for(ReorderPolicy::SiftConverge);
    let cones = pool::run(1, take.min(suite.len()), |i| {
        let b = &suite[i];
        let mut m = Manager::with_capacity(
            (b.network.len() * 16).clamp(1 << 12, 1 << 20),
            bdd::DEFAULT_CACHE_BITS,
        );
        let part = partition(&b.network, &mut m, PartitionConfig::default());
        let static_nodes = part.total_bdd_size(&m);
        let (report, sift_t) = timed(|| m.sift(&SiftConfig::default()));
        let sifted_nodes = part.total_bdd_size(&m);
        // Continue the same manager to a fixpoint: the first converge
        // pass starts from the single-pass order and every pass is
        // monotone, so the converged rooted size can never lose to the
        // single pass.
        let (creport, converge_t) = timed(|| m.sift_to_fixpoint(&ConvergeConfig::default()));
        let converged_nodes = part.total_bdd_size(&m);
        part.release_roots(&mut m);
        (
            static_nodes,
            sifted_nodes,
            report.swaps,
            report.final_size,
            sift_t.as_secs_f64(),
            converged_nodes,
            creport.final_size,
            creport.swaps,
            creport.passes,
            converge_t.as_secs_f64(),
        )
    });
    cones
        .into_iter()
        .enumerate()
        .map(|(i, cone)| {
            let b = &suite[i];
            let (row, t) = timed(|| bench::table1_row_with(b, &engine));
            let converge_row = bench::table1_row_with(b, &engine_converge);
            SiftBenchRow {
                name: b.name,
                static_nodes: cone.0,
                sifted_nodes: cone.1,
                swaps: cone.2,
                sifted_rooted: cone.3,
                sift_sec: cone.4,
                converged_nodes: cone.5,
                converged_rooted: cone.6,
                converge_swaps: cone.7,
                converge_passes: cone.8,
                converge_sec: cone.9,
                verified: row.verified,
                converge_verified: converge_row.verified,
                sec: t.as_secs_f64(),
            }
        })
        .collect()
}

fn run_storm(name: &'static str, f: fn(&mut Manager, u32) -> u64, rounds: u32) -> StormResult {
    let mut m = Manager::new();
    let (ops, elapsed) = timed(|| f(&mut m, rounds));
    let stats = m.cache_stats();
    StormResult {
        name,
        ops,
        micros: elapsed.as_micros(),
        hit_rate: stats.hit_rate(),
        nodes: m.num_nodes(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut subset: Option<usize> = None;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut jobs: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--subset" => {
                match args.get(i + 1).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => subset = Some(n),
                    _ => {
                        eprintln!("--subset requires a number of benchmarks");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                match args.get(i + 1) {
                    Some(path) => out_path = path.clone(),
                    None => {
                        eprintln!("--out requires a file path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--jobs" => {
                if jobs.is_some() {
                    eprintln!("duplicate --jobs flag");
                    std::process::exit(2);
                }
                match args.get(i + 1).map(|v| parse_jobs(v)) {
                    Some(Ok(n)) => jobs = Some(n),
                    Some(Err(msg)) => {
                        eprintln!("{msg}");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--jobs requires a worker count");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument: {other} (supported: --subset N, --out PATH, --jobs N)"
                );
                std::process::exit(2);
            }
        }
    }
    let jobs = jobs.unwrap_or_else(pool::default_jobs);

    let storms = [
        run_storm("ite_storm", ite_storm, 600),
        run_storm("and_storm", and_storm, 600),
        run_storm("xor_storm", xor_storm, 600),
    ];
    for s in &storms {
        println!(
            "{:<10} {:>8} ops in {:>8} µs  ({:.1} Mops/s, cache hit {:.1}%, {} nodes)",
            s.name,
            s.ops,
            s.micros,
            s.ops as f64 / s.micros.max(1) as f64,
            100.0 * s.hit_rate,
            s.nodes
        );
    }

    let gc = gc_storm(3_125);
    println!(
        "gc_storm   {:>8} ops in {:>8} µs  ({:.1} Mops/s, cache hit {:.1}% of {} lookups, reclaimed {} in {} collections, arena {} peak {} live {} garbage-est {})",
        gc.ops,
        gc.micros,
        gc.ops as f64 / gc.micros.max(1) as f64,
        100.0 * gc.hit_rate,
        gc.lookups,
        gc.reclaimed,
        gc.collections,
        gc.final_nodes,
        gc.peak_nodes,
        gc.live_nodes,
        gc.garbage_estimate
    );

    let sift = sift_storm();
    println!(
        "sift_storm {:>4} -> {:>4} nodes in {:>8} µs  ({} adjacent swaps over {} vars, {} symmetric groups); converge {:>4} nodes in {:>8} µs ({} swaps, {} passes)",
        sift.nodes_before,
        sift.nodes_after,
        sift.micros,
        sift.swaps,
        sift.vars_sifted,
        sift.groups,
        sift.converge_nodes,
        sift.converge_micros,
        sift.converge_swaps,
        sift.converge_passes
    );

    let par = par_apply_storm();
    for r in &par.runs {
        println!(
            "par_apply  threads={} {:>4} ops / {:>9} lookups in {:>8} µs  ({:.1} Mlookups/s, L1 hit {:.1}%, L2 {}/{} hit {:.1}%, {} L2 inserts, {} steals, {} result nodes, {} shared cone nodes, L2 {} entries)",
            r.threads,
            r.ops,
            r.lookups,
            r.micros,
            r.lookups as f64 / r.micros.max(1) as f64,
            100.0 * r.hit_rate,
            r.shared_hits,
            r.shared_lookups,
            100.0 * r.shared_hit_rate,
            r.shared_insertions,
            r.steals,
            r.result_nodes,
            par.cone_nodes,
            par.shared_cache_entries
        );
    }

    // Suite portion: per-benchmark decomposition wall clock (Table I
    // flows), timed sequentially first (the continuity baseline), then
    // through the work-stealing pool when more than one worker is asked
    // for — the sequential/parallel wall-clock pair is the tracked
    // speedup number.
    let suite = paper_suite();
    let take = subset.unwrap_or(suite.len()).min(suite.len());
    let row_of = |i: usize| {
        let (row, t) = timed(|| bench::table1_row(&suite[i]));
        (suite[i].name, t.as_secs_f64(), row)
    };
    let (rows, suite_seq_elapsed) = timed(|| pool::run(1, take, row_of));
    let (par_rows, suite_par_elapsed) = if jobs > 1 {
        let (r, t) = timed(|| pool::run(jobs, take, row_of));
        (r, t)
    } else {
        (Vec::new(), suite_seq_elapsed)
    };
    for (p, s) in par_rows.iter().zip(&rows) {
        assert_eq!(
            (p.0, p.2.maj, p.2.pga, p.2.verified),
            (s.0, s.2.maj, s.2.pga, s.2.verified),
            "parallel suite rows must match the sequential run"
        );
    }
    for (name, secs, row) in &rows {
        println!(
            "suite: {:<18} {:>9.3} s  maj_total={} pga_total={} verified={} status={}",
            name,
            secs,
            row.maj.decomposition_total(),
            row.pga.decomposition_total(),
            row.verified,
            row.status.as_str()
        );
    }
    let speedup = suite_seq_elapsed.as_secs_f64() / suite_par_elapsed.as_secs_f64().max(1e-9);
    println!(
        "suite wall-clock ({} of {} benchmarks): {:.3} s sequential",
        take,
        suite.len(),
        suite_seq_elapsed.as_secs_f64()
    );
    println!(
        "suite wall-clock ({} of {} benchmarks): {:.3} s at jobs={} (speedup {:.2}x)",
        take,
        suite.len(),
        suite_par_elapsed.as_secs_f64(),
        jobs,
        speedup
    );

    // Sift section: per-benchmark cone sizes under the static partition
    // order vs. after sifting, plus the oracle-checked Table I flow under
    // `--reorder sift`, fanned out over the pool.
    let sift_rows = sift_suite(take);
    let mut reduced = 0usize;
    let mut converge_no_worse = 0usize;
    for r in &sift_rows {
        if r.sifted_nodes < r.static_nodes {
            reduced += 1;
        }
        if r.converged_rooted <= r.sifted_rooted {
            converge_no_worse += 1;
        }
        println!(
            "sift:  {:<18} cones {:>5} -> {:>5} nodes / rooted {:>5} ({} swaps, {:.4} s) converged {:>5} / rooted {:>5} ({} swaps, {} passes, {:.4} s)  flow {:>7.3} s verified={}/{}",
            r.name,
            r.static_nodes,
            r.sifted_nodes,
            r.sifted_rooted,
            r.swaps,
            r.sift_sec,
            r.converged_nodes,
            r.converged_rooted,
            r.converge_swaps,
            r.converge_passes,
            r.converge_sec,
            r.sec,
            r.verified,
            r.converge_verified
        );
    }
    println!(
        "sift reduced cone node counts on {reduced} of {} benchmarks; converged rooted size <= single-pass on {converge_no_worse}",
        sift_rows.len()
    );

    // Hand-rolled JSON writer (the workspace is dependency-free offline).
    let mut json = String::new();
    json.push_str("{\n  \"storms\": [\n");
    for (i, s) in storms.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"micros\": {}, \"mops_per_sec\": {:.3}, \"cache_hit_rate\": {:.4}, \"nodes\": {}}}{}",
            s.name,
            s.ops,
            s.micros,
            s.ops as f64 / s.micros.max(1) as f64,
            s.hit_rate,
            s.nodes,
            if i + 1 < storms.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"gc_storm\": {{\"ops\": {}, \"micros\": {}, \"mops_per_sec\": {:.3}, \"cache_lookups\": {}, \"cache_hit_rate\": {:.4}, \"reclaimed\": {}, \"collections\": {}, \"peak_nodes\": {}, \"final_nodes\": {}, \"live_nodes\": {}, \"garbage_estimate\": {}}},",
        gc.ops,
        gc.micros,
        gc.ops as f64 / gc.micros.max(1) as f64,
        gc.lookups,
        gc.hit_rate,
        gc.reclaimed,
        gc.collections,
        gc.peak_nodes,
        gc.final_nodes,
        gc.live_nodes,
        gc.garbage_estimate
    );
    let _ = writeln!(
        json,
        "  \"sift_storm\": {{\"nodes_before\": {}, \"nodes_after\": {}, \"swaps\": {}, \"vars_sifted\": {}, \"groups\": {}, \"micros\": {}, \"converge_nodes\": {}, \"converge_swaps\": {}, \"converge_passes\": {}, \"converge_micros\": {}}},",
        sift.nodes_before,
        sift.nodes_after,
        sift.swaps,
        sift.vars_sifted,
        sift.groups,
        sift.micros,
        sift.converge_nodes,
        sift.converge_swaps,
        sift.converge_passes,
        sift.converge_micros
    );
    json.push_str("  \"par_apply\": {\n");
    let _ = writeln!(json, "    \"cone_nodes\": {},", par.cone_nodes);
    let _ = writeln!(
        json,
        "    \"shared_cache_entries\": {},",
        par.shared_cache_entries
    );
    // Same caveat as the suite section: on a single-core container the
    // wider runs are expected to be no faster than the `threads = 1`
    // baseline, and `cores` is what lets a reader tell that apart from a
    // regression.
    let _ = writeln!(
        json,
        "    \"cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("    \"runs\": [\n");
    for (i, r) in par.runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"threads\": {}, \"ops\": {}, \"cache_lookups\": {}, \"cache_hit_rate\": {:.4}, \"shared_lookups\": {}, \"shared_hits\": {}, \"shared_hit_rate\": {:.4}, \"shared_insertions\": {}, \"steals\": {}, \"micros\": {}, \"mlookups_per_sec\": {:.3}, \"result_nodes\": {}}}{}",
            r.threads,
            r.ops,
            r.lookups,
            r.hit_rate,
            r.shared_lookups,
            r.shared_hits,
            r.shared_hit_rate,
            r.shared_insertions,
            r.steals,
            r.micros,
            r.lookups as f64 / r.micros.max(1) as f64,
            r.result_nodes,
            if i + 1 < par.runs.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"sift_suite\": {\n");
    let _ = writeln!(json, "    \"reduced_benchmarks\": {reduced},");
    let _ = writeln!(
        json,
        "    \"converge_no_worse_than_single_pass\": {converge_no_worse},"
    );
    json.push_str("    \"rows\": [\n");
    for (i, r) in sift_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"static_nodes\": {}, \"sifted_nodes\": {}, \"sifted_rooted\": {}, \"swaps\": {}, \"sift_sec\": {:.4}, \"converged_nodes\": {}, \"converged_rooted\": {}, \"converge_swaps\": {}, \"converge_passes\": {}, \"converge_sec\": {:.4}, \"flow_sec\": {:.4}, \"verified\": {}, \"converge_verified\": {}}}{}",
            r.name,
            r.static_nodes,
            r.sifted_nodes,
            r.sifted_rooted,
            r.swaps,
            r.sift_sec,
            r.converged_nodes,
            r.converged_rooted,
            r.converge_swaps,
            r.converge_passes,
            r.converge_sec,
            r.sec,
            r.verified,
            r.converge_verified,
            if i + 1 < sift_rows.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"suite\": {\n");
    let _ = write!(
        json,
        "    \"benchmarks_run\": {},\n    \"benchmarks_total\": {},\n    \"wall_clock_sec\": {:.4},\n    \"wall_clock_par_sec\": {:.4},\n    \"jobs\": {},\n    \"cores\": {},\n    \"speedup\": {:.3},\n",
        take,
        suite.len(),
        suite_seq_elapsed.as_secs_f64(),
        suite_par_elapsed.as_secs_f64(),
        jobs,
        // Available parallelism of the machine that produced the file, so
        // a sub-1.0 speedup on a single-core container reads as expected
        // behaviour rather than a regression.
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        speedup
    );
    json.push_str("    \"rows\": [\n");
    for (i, (name, secs, row)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"sec\": {:.4}, \"maj_total\": {}, \"pga_total\": {}, \"verified\": {}, \"status\": \"{}\"}}{}",
            name,
            secs,
            row.maj.decomposition_total(),
            row.pga.decomposition_total(),
            row.verified,
            row.status.as_str(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_kernels.json");
    println!("wrote {out_path}");
}
