//! Reproduces the runtime claim of §V-B.3 ("BDS-MAJ took, on average,
//! only 1.4 ms per gate count of the final circuit") and prints a compact
//! per-benchmark overview of the whole reproduction.

use bdsmaj::{bds_maj, BdsMajOptions};
use circuits::suite::paper_suite;
use logic::equiv_sim;
use techmap::{map_network, report, Library};

fn main() {
    let lib = Library::cmos22();
    println!(
        "{:<18} {:>8} {:>8} {:>9} {:>10} {:>12}",
        "Benchmark", "nodes", "gates", "area", "runtime", "ms/gate"
    );
    let mut total_runtime = 0.0f64;
    let mut total_gates = 0usize;
    for bench in paper_suite() {
        let flow = bds_maj(&bench.network, &BdsMajOptions::default());
        let mapped = map_network(flow.network());
        let r = report(&mapped, &lib);
        let ok = equiv_sim(&bench.network, &mapped.network, 4, 0x5F).is_ok();
        let runtime = flow.result.runtime.as_secs_f64();
        total_runtime += runtime;
        total_gates += r.gate_count;
        println!(
            "{:<18} {:>8} {:>8} {:>9.2} {:>9.1}ms {:>12.3}{}",
            bench.name,
            flow.network().gate_counts().decomposition_total(),
            r.gate_count,
            r.area,
            runtime * 1e3,
            runtime * 1e3 / r.gate_count.max(1) as f64,
            if ok { "" } else { "  EQUIV-FAIL" },
        );
    }
    println!();
    println!(
        "average optimization runtime per mapped gate: {:.3} ms/gate  [paper: 1.4 ms/gate]",
        total_runtime * 1e3 / total_gates.max(1) as f64
    );
}
