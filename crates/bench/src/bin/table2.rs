//! Regenerates **Table II** of the paper: mapped area (µm²), gate count
//! and delay (ns) on the CMOS-22 nm six-cell library for the four flows —
//! BDS-MAJ, BDS-PGA, ABC-like and DC-like — plus the paper's headline
//! percentage aggregates.
//!
//! `--jobs N` fans the 17 rows out over the work-stealing suite pool.
//! Row order and content (names, mapped area/gates/delay, verified
//! flags) are identical at every worker count.

use bench::{
    average_saving, engine_options_for, print_rows_grouped, run_table2_budgeted, suite_args,
    RowStatus,
};
use techmap::Library;

fn main() {
    let args = suite_args();
    let lib = Library::cmos22();
    let reorder = args.reorder;
    println!("TABLE II: Logic Synthesis, CMOS 22nm Technology Node ({reorder:?} reordering)");
    println!(
        "{:<18} | {:>9} {:>6} {:>7} | {:>9} {:>6} {:>7} | {:>9} {:>6} {:>7} | {:>9} {:>6} {:>7} | eq",
        "Benchmark",
        "A.(um2)", "G.C.", "D.(ns)",
        "A.(um2)", "G.C.", "D.(ns)",
        "A.(um2)", "G.C.", "D.(ns)",
        "A.(um2)", "G.C.", "D.(ns)"
    );
    println!(
        "{:<18} | {:^25} | {:^25} | {:^25} | {:^25} |",
        "", "BDS-MAJ", "BDS-PGA", "ABC", "Design Compiler (sim.)"
    );
    let rows = run_table2_budgeted(&lib, &engine_options_for(reorder), args.jobs, args.budget);
    let mut area_vs = [Vec::new(), Vec::new(), Vec::new()]; // pga, abc, dc
    let mut delay_vs = [Vec::new(), Vec::new(), Vec::new()];
    let mut avgs = [0.0f64; 12];
    print_rows_grouped(
        &rows,
        |row| row.group,
        |row| {
            println!(
            "{:<18} | {:>9.2} {:>6} {:>7.3} | {:>9.2} {:>6} {:>7.3} | {:>9.2} {:>6} {:>7.3} | {:>9.2} {:>6} {:>7.3} | {}",
            row.name,
            row.bds_maj.area, row.bds_maj.gate_count, row.bds_maj.delay,
            row.bds_pga.area, row.bds_pga.gate_count, row.bds_pga.delay,
            row.abc.area, row.abc.gate_count, row.abc.delay,
            row.dc.area, row.dc.gate_count, row.dc.delay,
            if row.verified { "ok" } else { "FAIL" },
        );
            if row.status != RowStatus::Ok {
                println!("{:<18} | status: {}", "", row.status.as_str());
            }
            // Aggregates only count fully decomposed rows.
            if row.status != RowStatus::Ok {
                return;
            }
            area_vs[0].push((row.bds_maj.area, row.bds_pga.area));
            area_vs[1].push((row.bds_maj.area, row.abc.area));
            area_vs[2].push((row.bds_maj.area, row.dc.area));
            delay_vs[0].push((row.bds_maj.delay, row.bds_pga.delay));
            delay_vs[1].push((row.bds_maj.delay, row.abc.delay));
            delay_vs[2].push((row.bds_maj.delay, row.dc.delay));
            for (acc, v) in avgs.iter_mut().zip([
                row.bds_maj.area,
                row.bds_maj.gate_count as f64,
                row.bds_maj.delay,
                row.bds_pga.area,
                row.bds_pga.gate_count as f64,
                row.bds_pga.delay,
                row.abc.area,
                row.abc.gate_count as f64,
                row.abc.delay,
                row.dc.area,
                row.dc.gate_count as f64,
                row.dc.delay,
            ]) {
                *acc += v;
            }
        },
    );
    let n = (area_vs[0].len().max(1)) as f64;
    println!(
        "{:<18} | {:>9.2} {:>6.0} {:>7.3} | {:>9.2} {:>6.0} {:>7.3} | {:>9.2} {:>6.0} {:>7.3} | {:>9.2} {:>6.0} {:>7.3} |",
        "Average",
        avgs[0] / n, avgs[1] / n, avgs[2] / n,
        avgs[3] / n, avgs[4] / n, avgs[5] / n,
        avgs[6] / n, avgs[7] / n, avgs[8] / n,
        avgs[9] / n, avgs[10] / n, avgs[11] / n,
    );
    println!();
    println!("Headline aggregates (paper values in brackets):");
    println!(
        "  area  saving vs BDS-PGA : {:5.1} %   [26.4 %]",
        average_saving(&area_vs[0])
    );
    println!(
        "  area  saving vs ABC     : {:5.1} %   [28.8 %]",
        average_saving(&area_vs[1])
    );
    println!(
        "  area  saving vs DC      : {:5.1} %   [ 6.0 %]",
        average_saving(&area_vs[2])
    );
    println!(
        "  delay saving vs BDS-PGA : {:5.1} %   [20.9 %]",
        average_saving(&delay_vs[0])
    );
    println!(
        "  delay saving vs ABC     : {:5.1} %   [12.8 %]",
        average_saving(&delay_vs[1])
    );
    println!(
        "  delay saving vs DC      : {:5.1} %   [ 7.8 %]",
        average_saving(&delay_vs[2])
    );
    let degraded = rows
        .iter()
        .filter(|r| r.status == RowStatus::Degraded)
        .count();
    let failed = rows.iter().filter(|r| r.status == RowStatus::Limit).count();
    if degraded + failed > 0 {
        eprintln!("NOTE: {degraded} degraded and {failed} failed rows under the resource budget");
    }
    let unverified = rows
        .iter()
        .filter(|r| r.status != RowStatus::Limit && !r.verified)
        .count();
    if unverified > 0 {
        eprintln!("WARNING: {unverified} rows failed equivalence checking");
        std::process::exit(1);
    }
    if failed > 0 {
        std::process::exit(1);
    }
    if degraded > 0 {
        std::process::exit(3);
    }
}
