//! Regenerates **Table I** of the paper: decomposition node counts
//! (AND / OR / XOR / XNOR / MAJ / total) and runtime, BDS-MAJ vs BDS-PGA,
//! over the 17-benchmark suite, followed by the paper's headline
//! aggregates (average node reduction, MAJ node share, runtime delta).
//!
//! `--jobs N` fans the 17 rows out over the work-stealing suite pool.
//! Row order and content (names, node counts, verified flags) are
//! identical at every worker count; only the measured-runtime cells
//! vary, as they do between any two runs.

use bench::{
    average_saving, engine_options_for, print_rows_grouped, run_table1_budgeted, suite_args,
    RowStatus,
};

fn main() {
    let args = suite_args();
    let reorder = args.reorder;
    println!("TABLE I: Decomposition Results: BDS-MAJ vs. BDS-PGA ({reorder:?} reordering)");
    println!(
        "{:<18} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8} | eq",
        "Benchmark", "AND", "OR", "XOR", "XNOR", "MAJ", "Total", "sec",
        "AND", "OR", "XOR", "XNOR", "MAJ", "Total", "sec"
    );
    println!("{:-<18}-+-{:-<44}-+-{:-<44}-+---", "", "", "");
    let rows = run_table1_budgeted(&engine_options_for(reorder), args.jobs, args.budget);
    let mut node_pairs = Vec::new();
    let mut runtime_pairs = Vec::new();
    let mut maj_nodes = 0usize;
    let mut total_nodes = 0usize;
    let mut sums = [0usize; 14];
    print_rows_grouped(
        &rows,
        |row| row.group,
        |row| {
            let m = &row.maj;
            let p = &row.pga;
            println!(
            "{:<18} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.2} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.2} | {}",
            row.name,
            m.and, m.or, m.xor, m.xnor, m.maj, m.decomposition_total(),
            row.maj_runtime.as_secs_f64(),
            p.and, p.or, p.xor, p.xnor, p.maj, p.decomposition_total(),
            row.pga_runtime.as_secs_f64(),
            if row.verified { "ok" } else { "FAIL" },
        );
            if row.status != RowStatus::Ok {
                println!("{:<18} | status: {}", "", row.status.as_str());
            }
            // Aggregates only count fully decomposed rows: a degraded or
            // failed row's counts describe fallback logic, not the flow.
            if row.status != RowStatus::Ok {
                return;
            }
            node_pairs.push((
                m.decomposition_total() as f64,
                p.decomposition_total() as f64,
            ));
            runtime_pairs.push((row.maj_runtime.as_secs_f64(), row.pga_runtime.as_secs_f64()));
            maj_nodes += m.maj;
            total_nodes += m.decomposition_total();
            for (acc, v) in sums.iter_mut().zip([
                m.and,
                m.or,
                m.xor,
                m.xnor,
                m.maj,
                m.decomposition_total(),
                0,
                p.and,
                p.or,
                p.xor,
                p.xnor,
                p.maj,
                p.decomposition_total(),
                0,
            ]) {
                *acc += v;
            }
        },
    );
    let n = (runtime_pairs.len().max(1)) as f64;
    println!("{:-<18}-+-{:-<44}-+-{:-<44}-+---", "", "", "");
    println!(
        "{:<18} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>6.1} {:>8.2} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>5.1} {:>6.1} {:>8.2} |",
        "Average",
        sums[0] as f64 / n, sums[1] as f64 / n, sums[2] as f64 / n,
        sums[3] as f64 / n, sums[4] as f64 / n, sums[5] as f64 / n,
        runtime_pairs.iter().map(|(a, _)| a).sum::<f64>() / n,
        sums[7] as f64 / n, sums[8] as f64 / n, sums[9] as f64 / n,
        sums[10] as f64 / n, sums[11] as f64 / n, sums[12] as f64 / n,
        runtime_pairs.iter().map(|(_, b)| b).sum::<f64>() / n,
    );
    println!();
    println!("Headline aggregates (paper values in brackets):");
    println!(
        "  average node count reduction vs BDS-PGA : {:5.1} %   [29.1 %]",
        average_saving(&node_pairs)
    );
    println!(
        "  MAJ share of BDS-MAJ node count         : {:5.1} %   [ 9.8 %]",
        100.0 * maj_nodes as f64 / total_nodes.max(1) as f64
    );
    let rt_delta = -average_saving(&runtime_pairs);
    println!(
        "  average runtime change vs BDS-PGA       : {:+5.1} %   [+4.6 %]",
        rt_delta
    );
    let degraded = rows
        .iter()
        .filter(|r| r.status == RowStatus::Degraded)
        .count();
    let failed = rows.iter().filter(|r| r.status == RowStatus::Limit).count();
    if degraded + failed > 0 {
        eprintln!("NOTE: {degraded} degraded and {failed} failed rows under the resource budget");
    }
    // Verification only applies to rows that produced a result.
    let unverified = rows
        .iter()
        .filter(|r| r.status != RowStatus::Limit && !r.verified)
        .count();
    if unverified > 0 {
        eprintln!("WARNING: {unverified} rows failed equivalence checking");
        std::process::exit(1);
    }
    if failed > 0 {
        std::process::exit(1);
    }
    if degraded > 0 {
        std::process::exit(3);
    }
}
