//! Regenerates **Fig. 1** of the paper: the BDD of `F = ab + bc + ac`
//! with its non-trivial m-dominator highlighted in red. Prints Graphviz
//! DOT to stdout (`dot -Tpng` renders the figure).

use bdd::Manager;
use bdsmaj::{find_m_dominators, MajConfig};

fn main() {
    let mut m = Manager::new();
    m.set_var_name(0, "A");
    m.set_var_name(1, "B");
    m.set_var_name(2, "C");
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let f = m.maj(a, b, c);
    let dominators = find_m_dominators(&mut m, f, &MajConfig::default());
    eprintln!(
        "F = ab + bc + ac: {} internal nodes, {} non-trivial m-dominator(s)",
        m.size(f),
        dominators.len()
    );
    for &d in &dominators {
        eprintln!(
            "  m-dominator: node of variable {} (function {:?})",
            m.var_name(m.node(d).var.0),
            m.function_of(d)
        );
    }
    println!("{}", m.to_dot(f, &dominators));
}
