//! A scoped, hand-rolled work-stealing thread pool for the embarrassingly
//! parallel suite runs (Table I/II rows, kernels-bench sections, the
//! `bdsmaj` CLI's multi-file mode).
//!
//! Design:
//!
//! * **Per-worker deques.** The task indices `0..n` are dealt round-robin
//!   across one deque per worker ([`bdd::steal::StealDeques`] — the same
//!   deal / own-front-pop / steal-back primitive the parallel apply's
//!   fork-join recursion schedules on). A worker pops from the *front* of
//!   its own deque and, when that runs dry, steals from the *back* of a
//!   victim's — owner and thief on opposite ends (in the spirit of
//!   rayon's scoped join, without the dependency: the workspace is
//!   offline).
//! * **Pre-sized slot vector.** Worker `w` finishing task `i` writes into
//!   slot `i`, so [`run`] returns results in task order no matter which
//!   thread ran what — callers print rows in the same order and with the
//!   same content as a sequential run.
//! * **Panic propagation.** A panicking task poisons nothing: the payload
//!   is captured, the remaining workers drain early, and the payload is
//!   re-thrown on the calling thread via `resume_unwind`, exactly like a
//!   panic in a plain sequential loop.
//! * **`jobs == 1` degrades to the exact sequential path** — no threads,
//!   no locks, a plain in-order `map`; parallelism is strictly opt-in.
//!
//! # Ownership rule
//!
//! Tasks must not share a [`bdd::Manager`]: the manager bundles a
//! per-thread [`bdd::Session`] (`RefCell` traversal scratch, computed
//! cache) and is deliberately **not `Sync`** (there is a `compile_fail`
//! doctest in the `bdd` crate pinning this). Every flow in this
//! workspace builds one manager per benchmark run, so each worker owns
//! its managers outright. Since PR 9 the node-owning half
//! ([`bdd::NodeStore`]) *is* `Sync`, but cross-thread sharing happens
//! only inside `Manager::par_and`-style entry points — never across
//! pool tasks.
//!
//! # One thread cap, two levels of parallelism
//!
//! A manager with a [`bdd::JobBudget`] installed will fork large cones
//! across extra threads (`par_and`/`par_xor`/`par_ite`). Nesting that
//! inside a pool worker must not multiply threads: [`run_with_budget`]
//! hands every task a budget holding exactly the `jobs` threads the
//! suite level did not consume, and each worker returns its own thread
//! to the budget when its deque drains. Wire that budget into the
//! task's managers (`Manager::set_job_budget`) and `--jobs`/`BENCH_JOBS`
//! stays the single knob for total parallelism.

use bdd::steal::StealDeques;
use bdd::JobBudget;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Worker count used when the caller does not say: the `BENCH_JOBS`
/// environment variable if it parses as a positive integer, otherwise the
/// machine's available parallelism.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("BENCH_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("ignoring BENCH_JOBS={v:?}: need a positive worker count");
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), ..., f(n - 1)` on up to `jobs` workers and returns
/// the results in index order.
///
/// With `jobs <= 1` (or fewer than two tasks) this is a plain sequential
/// loop on the calling thread. Otherwise `min(jobs, n)` scoped workers
/// drain round-robin-seeded deques, stealing from each other when their
/// own runs dry; results land in a pre-sized slot vector indexed by task,
/// so the returned order is independent of scheduling.
///
/// If any task panics, the first payload is re-thrown on the calling
/// thread after all workers have stopped.
pub fn run<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_with_budget(jobs, n, |i, _| f(i))
}

/// Like [`run`], but each task also receives the shared [`JobBudget`]
/// holding the threads the suite level did not consume: with `w =
/// min(jobs, n)` workers running, the budget starts at `jobs - w`
/// permits, and every worker returns its own thread to the budget when
/// its deque drains. A task that installs the budget into its managers
/// (`Manager::set_job_budget`) lets large cones fork intra-cone without
/// ever exceeding `jobs` threads machine-wide.
// bdslint: allow(protect-release) -- the release call returns a drained
// worker's thread permit to the JobBudget; no node root is involved.
pub fn run_with_budget<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &JobBudget) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        // Sequential suite level: the whole budget minus this thread is
        // available for intra-cone forking.
        let budget = JobBudget::new(jobs.saturating_sub(1));
        return (0..n).map(|i| f(i, &budget)).collect();
    }
    let workers = jobs.min(n);
    let budget = JobBudget::new(jobs - workers);
    // Deal task indices round-robin so a skewed prefix (the suite's big
    // datapaths cluster together) still spreads across workers even
    // before any stealing happens.
    let deques: StealDeques<usize> = StealDeques::deal(workers, 0..n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let panicked = &panicked;
            let payload = &payload;
            let f = &f;
            let budget = &budget;
            scope.spawn(move || {
                while !panicked.load(Ordering::Relaxed) {
                    let Some((i, _)) = deques.next(me) else {
                        break;
                    };
                    match catch_unwind(AssertUnwindSafe(|| f(i, budget))) {
                        Ok(v) => *slots[i].lock().unwrap() = Some(v),
                        Err(p) => {
                            // First panic wins; everyone else drains out.
                            payload.lock().unwrap().get_or_insert(p);
                            panicked.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                // This worker's thread is done — still-running tasks may
                // widen their intra-cone forks by one.
                budget.release(1);
            });
        }
    });

    if let Some(p) = payload.lock().unwrap().take() {
        // The early drain abandons any task that was still queued (dealt
        // to a deque but never popped). Account for them out loud before
        // re-throwing, so a batch log never silently under-reports.
        let abandoned = deques.queued();
        if abandoned > 0 {
            eprintln!("pool: a task panicked; {abandoned} of {n} tasks were abandoned unrun");
        }
        resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every task index was drained exactly once")
        })
        .collect()
}

/// Like [`run`], but with per-task panic isolation: every task runs to
/// completion or to its own panic, and the result vector reports each
/// outcome as `Ok(value)` or `Err(panic message)` in task order. No task
/// is ever skipped — one bad input yields one failed row instead of
/// killing the batch (the behavior `bdsmaj --bench` and the table bins
/// want; tests keep [`run`]'s fail-fast `resume_unwind` default).
pub fn run_catching<T, F>(jobs: usize, n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_catching_with_budget(jobs, n, |i, _| f(i))
}

/// [`run_catching`] with the same leftover-thread [`JobBudget`] contract
/// as [`run_with_budget`]: each task receives the budget holding the
/// threads the suite level did not consume, and drained workers return
/// their own thread to it.
// bdslint: allow(protect-release) -- the release call returns a drained
// worker's thread permit to the JobBudget; no node root is involved.
pub fn run_catching_with_budget<T, F>(jobs: usize, n: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize, &JobBudget) -> T + Sync,
{
    let call = |i: usize, budget: &JobBudget| {
        catch_unwind(AssertUnwindSafe(|| f(i, budget))).map_err(panic_message)
    };
    if jobs <= 1 || n <= 1 {
        let budget = JobBudget::new(jobs.saturating_sub(1));
        return (0..n).map(|i| call(i, &budget)).collect();
    }
    let workers = jobs.min(n);
    let budget = JobBudget::new(jobs - workers);
    let deques: StealDeques<usize> = StealDeques::deal(workers, 0..n);
    let slots: Vec<Mutex<Option<Result<T, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let call = &call;
            let budget = &budget;
            scope.spawn(move || {
                while let Some((i, _)) = deques.next(me) {
                    *slots[i].lock().unwrap() = Some(call(i, budget));
                }
                budget.release(1);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap()
                .expect("every task index was drained exactly once")
        })
        .collect()
}

/// Renders a caught panic payload as a display string (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn sequential_and_parallel_agree() {
        let sq = |i: usize| i * i;
        let seq: Vec<usize> = (0..100).map(sq).collect();
        for jobs in [1, 2, 3, 4, 7, 100, 1000] {
            assert_eq!(run(jobs, 100, sq), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(run(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run(4, 1, |i| i + 41), vec![41]);
    }

    #[test]
    fn skewed_workload_runs_every_task_exactly_once() {
        // One task dominates the runtime; the dealt-then-stolen schedule
        // must still run each index exactly once and keep result order.
        const N: usize = 64;
        let ran: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let out = run(4, N, |i| {
            ran[i].fetch_add(1, Ordering::Relaxed);
            // Index 0 is ~N times the work of the rest.
            let rounds = if i == 0 { 4_000_000u64 } else { 50_000 };
            let mut x = i as u64 + 1;
            for _ in 0..rounds {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            (i, x)
        });
        for (i, counter) in ran.iter().enumerate() {
            assert_eq!(counter.load(Ordering::Relaxed), 1, "task {i} run count");
        }
        for (slot, (i, _)) in out.iter().enumerate() {
            assert_eq!(slot, *i, "result landed in the wrong slot");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let r = catch_unwind(|| {
            run(4, 32, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
                i
            })
        });
        let p = r.expect_err("the task panic must reach the caller");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 17 exploded");
    }

    #[test]
    fn panic_in_sequential_mode_propagates_too() {
        let r = catch_unwind(|| run(1, 4, |i| if i == 2 { panic!("seq") } else { i }));
        assert!(r.is_err());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn run_catching_isolates_panics_per_task() {
        for jobs in [1, 4] {
            let out = run_catching(jobs, 32, |i| {
                if i % 7 == 3 {
                    panic!("task {i} exploded");
                }
                i * 2
            });
            assert_eq!(out.len(), 32, "every task must be accounted for");
            for (i, r) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let msg = r.as_ref().expect_err("task should have failed");
                    assert_eq!(msg, &format!("task {i} exploded"), "jobs={jobs}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn run_catching_runs_every_task_despite_early_panics() {
        // Even when the very first tasks panic, later tasks still run —
        // no early drain in catching mode.
        const N: usize = 48;
        let ran: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let out = run_catching(3, N, |i| {
            ran[i].fetch_add(1, Ordering::Relaxed);
            if i < 8 {
                panic!("early loss");
            }
            i
        });
        for (i, counter) in ran.iter().enumerate() {
            assert_eq!(counter.load(Ordering::Relaxed), 1, "task {i} run count");
        }
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 8);
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), N - 8);
    }

    #[test]
    fn run_catching_all_ok_matches_run() {
        let sq = |i: usize| i * i;
        let plain = run(4, 40, sq);
        let caught: Vec<usize> = run_catching(4, 40, sq)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(plain, caught);
    }

    #[test]
    fn sequential_budget_holds_the_unused_jobs() {
        // One task, four jobs: the suite level consumes one thread, so
        // three permits are available for intra-cone forking.
        let seen = run_with_budget(4, 1, |_, b| b.available());
        assert_eq!(seen, vec![3]);
        // jobs == 1 leaves nothing to fork with.
        let seen = run_with_budget(1, 1, |_, b| b.available());
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn parallel_budget_never_exceeds_the_job_cap() {
        // 8 jobs over 2 tasks: 2 workers run, 6 permits start in the
        // budget, and a finished worker returns its thread — so a task
        // can observe 6 or 7 available, never 8.
        let seen = run_with_budget(8, 2, |_, b| b.available());
        for avail in seen {
            assert!((6..8).contains(&avail), "available={avail}");
        }
        // Saturated suite level: every job is a worker, nothing to fork
        // with until siblings drain.
        let seen = run_with_budget(2, 2, |_, b| b.try_acquire(100));
        for got in seen {
            assert!(got <= 1, "acquired={got}");
        }
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let out = run_catching(1, 1, |_| -> usize {
            panic!("{}", String::from("owned message"))
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "owned message");
    }
}
