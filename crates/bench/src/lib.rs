//! Shared harness code for the table-reproducing binaries and the
//! Criterion benches: runs every flow of the paper on the 17-benchmark
//! suite and aggregates the Table I / Table II rows.
//!
//! Suite runs fan out over the hand-rolled work-stealing pool in
//! [`pool`]: each benchmark row is an independent task (every flow run
//! already builds its own `bdd::Manager`, which is deliberately not
//! `Sync`), and results land in a pre-sized slot vector, so row order
//! and content (names, counts, verified flags) are identical to a
//! sequential run — only measured-runtime cells vary, as they do between
//! any two runs of the same binary. The worker count comes
//! from the binaries' shared `--jobs N` flag, the `BENCH_JOBS`
//! environment variable, or the machine's available parallelism, in that
//! order; `--jobs 1` is the exact sequential path.
//!
//! Since PR 9 a manager can *also* fork single large cones across
//! threads (`par_and`/`par_xor`/`par_ite` against the shared, `Sync`
//! `bdd::NodeStore`). Both levels of parallelism draw from one permit
//! pool: [`pool::run_with_budget`] hands each task the `bdd::JobBudget`
//! holding the jobs the suite level did not consume, so `--jobs` caps
//! total threads no matter how the work nests (see [`pool`]'s module
//! docs for the accounting).

use baselines::{abc_flow, dc_flow};
use bdd::ResourceLimits;
use bdsmaj::{bds_maj, bds_pga, BdsMajOptions};
use circuits::suite::{paper_suite, Benchmark, Group};
use decomp::EngineOptions;
pub use decomp::ReorderPolicy;
use logic::{equiv_sim, GateCounts, Network};
use std::time::{Duration, Instant};
use techmap::{map_network, report, Library, MappedReport};

pub mod pool;

/// Parses the shared `--reorder {none,window,sift}` flag of the table
/// binaries into engine options (all other knobs stay at their defaults).
pub fn engine_options_for(reorder: ReorderPolicy) -> EngineOptions {
    EngineOptions {
        reorder,
        ..EngineOptions::default()
    }
}

/// Outcome class of one benchmark row, printed in the tables and written
/// to `BENCH_kernels.json` so resource-degraded runs are visible instead
/// of silently shaping aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RowStatus {
    /// Every cone decomposed within budget (or no budget was set).
    #[default]
    Ok,
    /// The flow completed but some cones fell back un-decomposed.
    Degraded,
    /// The row did not produce a result (the task panicked or was cut
    /// off); its numbers are placeholders and must not enter aggregates.
    Limit,
}

impl RowStatus {
    /// The status as printed in table rows and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Degraded => "degraded",
            RowStatus::Limit => "limit",
        }
    }
}

/// Per-row resource budget from the shared `--node-limit` /
/// `--step-limit` / `--timeout` flags. The timeout is a *duration* here;
/// it becomes an absolute deadline when the row starts
/// ([`RowBudget::limits_now`]), so every benchmark gets its own clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowBudget {
    /// Live-node ceiling per manager (`--node-limit`).
    pub node_limit: Option<usize>,
    /// Recursion-step ceiling per cone (`--step-limit`).
    pub step_limit: Option<u64>,
    /// Wall-clock allowance per benchmark row (`--timeout`, seconds).
    pub timeout: Option<Duration>,
}

impl RowBudget {
    /// True when any limit is set.
    pub fn is_limited(&self) -> bool {
        self.node_limit.is_some() || self.step_limit.is_some() || self.timeout.is_some()
    }

    /// Resolves the budget into [`ResourceLimits`] whose deadline starts
    /// counting now. Call once per row, at row start.
    pub fn limits_now(&self) -> ResourceLimits {
        ResourceLimits {
            max_live_nodes: self.node_limit,
            max_steps: self.step_limit,
            deadline: self.timeout.map(|t| Instant::now() + t),
        }
    }

    /// Engine options for one row: `engine` with this budget installed
    /// (deadline anchored at the call).
    pub fn apply(&self, engine: &EngineOptions) -> EngineOptions {
        EngineOptions {
            limits: self.limits_now(),
            ..engine.clone()
        }
    }
}

/// The table binaries' shared command-line knobs.
#[derive(Clone, Copy, Debug)]
pub struct SuiteArgs {
    /// Per-cone reordering policy (`--reorder`, default: window).
    pub reorder: ReorderPolicy,
    /// Worker count for the suite pool (`--jobs`, default:
    /// [`pool::default_jobs`]).
    pub jobs: usize,
    /// Per-row resource budget (`--node-limit`, `--step-limit`,
    /// `--timeout`; default: unlimited).
    pub budget: RowBudget,
}

/// Usage text for the shared suite flags, printed on any parse error.
pub const SUITE_USAGE: &str = "supported options:
  --reorder {none,window,sift,sift-converge}  per-cone reordering policy (default: window)
  --jobs N                      suite worker threads (default: BENCH_JOBS or all cores; 1 = sequential)
  --node-limit N                live-BDD-node ceiling per benchmark (graceful per-cone degradation)
  --step-limit N                kernel recursion-step ceiling per cone
  --timeout SECS                wall-clock allowance per benchmark row (fractions allowed)";

/// Parses a `--jobs` value: a positive worker count.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs {v}: need a positive worker count")),
    }
}

/// Parses a positive integer limit value for `flag`.
pub fn parse_limit(flag: &str, v: &str) -> Result<u64, String> {
    match v.trim().parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} {v}: need a positive integer")),
    }
}

/// Parses a `--timeout` value: positive seconds, fractions allowed.
pub fn parse_timeout(v: &str) -> Result<Duration, String> {
    match v.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Ok(Duration::from_secs_f64(secs)),
        _ => Err(format!("--timeout {v}: need a positive number of seconds")),
    }
}

/// Parses the table binaries' shared flags (`--reorder`, `--jobs`) from
/// an argv slice (without the program name). Rejects duplicate flags and
/// unknown arguments.
pub fn parse_suite_args(args: &[String]) -> Result<SuiteArgs, String> {
    let mut reorder: Option<ReorderPolicy> = None;
    let mut jobs: Option<usize> = None;
    let mut node_limit: Option<usize> = None;
    let mut step_limit: Option<u64> = None;
    let mut timeout: Option<Duration> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--node-limit" => {
                if node_limit.is_some() {
                    return Err("duplicate --node-limit flag".to_string());
                }
                let v = args
                    .get(i + 1)
                    .ok_or("--node-limit requires a node count")?;
                node_limit = Some(parse_limit("--node-limit", v)? as usize);
                i += 2;
                continue;
            }
            "--step-limit" => {
                if step_limit.is_some() {
                    return Err("duplicate --step-limit flag".to_string());
                }
                let v = args
                    .get(i + 1)
                    .ok_or("--step-limit requires a step count")?;
                step_limit = Some(parse_limit("--step-limit", v)?);
                i += 2;
                continue;
            }
            "--timeout" => {
                if timeout.is_some() {
                    return Err("duplicate --timeout flag".to_string());
                }
                let v = args.get(i + 1).ok_or("--timeout requires seconds")?;
                timeout = Some(parse_timeout(v)?);
                i += 2;
                continue;
            }
            _ => {}
        }
        match args[i].as_str() {
            "--reorder" => {
                if reorder.is_some() {
                    return Err("duplicate --reorder flag".to_string());
                }
                let v = args
                    .get(i + 1)
                    .ok_or("--reorder requires one of: none, window, sift, sift-converge")?;
                reorder = Some(ReorderPolicy::from_flag(v).ok_or(format!(
                    "--reorder {v}: use none, window, sift or sift-converge"
                ))?);
                i += 2;
            }
            "--jobs" => {
                if jobs.is_some() {
                    return Err("duplicate --jobs flag".to_string());
                }
                let v = args.get(i + 1).ok_or("--jobs requires a worker count")?;
                jobs = Some(parse_jobs(v)?);
                i += 2;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(SuiteArgs {
        reorder: reorder.unwrap_or(ReorderPolicy::Window),
        jobs: jobs.unwrap_or_else(pool::default_jobs),
        budget: RowBudget {
            node_limit,
            step_limit,
            timeout,
        },
    })
}

/// Shared argv parsing for the table binaries: accepts exactly the
/// `--reorder {none,window,sift}` and `--jobs N` flags and exits with a
/// usage message on anything else (including a repeated flag).
pub fn suite_args() -> SuiteArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    parse_suite_args(&args).unwrap_or_else(|msg| {
        eprintln!("{msg}\n{SUITE_USAGE}");
        std::process::exit(2);
    })
}

/// Section header of a suite group, as printed between table rows.
pub fn group_header(group: Group) -> &'static str {
    match group {
        Group::Mcnc => "--- MCNC Benchmarks ---",
        Group::Hdl => "--- HDL Benchmarks ---",
    }
}

/// The table binaries' shared row-printing loop: prints each row via
/// `print_row`, inserting a [`group_header`] line whenever `group`
/// changes between consecutive rows (including before the first row).
/// Section breaks are derived from the rows themselves, so a reordered or
/// filtered suite prints correct headers instead of relying on
/// MCNC-before-HDL row order.
pub fn print_rows_grouped<R>(
    rows: &[R],
    group: impl Fn(&R) -> Group,
    mut print_row: impl FnMut(&R),
) {
    let mut current: Option<Group> = None;
    for row in rows {
        let g = group(row);
        if current != Some(g) {
            println!("{}", group_header(g));
            current = Some(g);
        }
        print_row(row);
    }
}

/// One row of Table I: decomposition node counts for both engines.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// MCNC or HDL section.
    pub group: Group,
    /// BDS-MAJ node counts.
    pub maj: GateCounts,
    /// BDS-MAJ decomposition runtime.
    pub maj_runtime: Duration,
    /// BDS-PGA node counts.
    pub pga: GateCounts,
    /// BDS-PGA decomposition runtime.
    pub pga_runtime: Duration,
    /// Whether both decomposed networks passed equivalence checking.
    pub verified: bool,
    /// Budget outcome: `Ok`, `Degraded` (some cones un-decomposed under
    /// the budget), or `Limit` (no result; placeholder numbers).
    pub status: RowStatus,
}

impl Table1Row {
    /// A placeholder row for a benchmark whose task did not finish
    /// (status [`RowStatus::Limit`]); its numbers must not enter
    /// aggregates.
    pub fn failed(bench: &Benchmark) -> Table1Row {
        Table1Row {
            name: bench.name,
            group: bench.group,
            maj: GateCounts::default(),
            maj_runtime: Duration::ZERO,
            pga: GateCounts::default(),
            pga_runtime: Duration::ZERO,
            verified: false,
            status: RowStatus::Limit,
        }
    }
}

/// Runs the Table I experiment (BDS-MAJ vs BDS-PGA decomposition) on the
/// full suite with default engine options and the default worker count.
pub fn run_table1() -> Vec<Table1Row> {
    run_table1_with(&EngineOptions::default())
}

/// [`run_table1`] under explicit engine options (the `--reorder` knob),
/// on [`pool::default_jobs`] workers.
pub fn run_table1_with(engine: &EngineOptions) -> Vec<Table1Row> {
    run_table1_jobs(engine, pool::default_jobs())
}

/// [`run_table1_with`] on an explicit worker count. Rows come back in
/// suite order regardless of `jobs`; `jobs == 1` is the exact sequential
/// path.
pub fn run_table1_jobs(engine: &EngineOptions, jobs: usize) -> Vec<Table1Row> {
    let suite = paper_suite();
    // Leftover suite threads flow into each task as its intra-cone fork
    // budget, so `jobs` caps total parallelism across both levels.
    pool::run_with_budget(jobs, suite.len(), |i, budget| {
        let engine = EngineOptions {
            job_budget: Some(budget.clone()),
            ..engine.clone()
        };
        table1_row_with(&suite[i], &engine)
    })
}

/// [`run_table1_jobs`] under a per-row resource budget, with per-task
/// panic isolation: a benchmark that blows the budget comes back as a
/// `Degraded` row; one that dies entirely comes back as a `Limit`
/// placeholder row instead of killing the batch.
pub fn run_table1_budgeted(
    engine: &EngineOptions,
    jobs: usize,
    budget: RowBudget,
) -> Vec<Table1Row> {
    let suite = paper_suite();
    pool::run_catching(jobs, suite.len(), |i| {
        table1_row_with(&suite[i], &budget.apply(engine))
    })
    .into_iter()
    .enumerate()
    .map(|(i, r)| {
        r.unwrap_or_else(|msg| {
            eprintln!("{}: task failed: {msg}", suite[i].name);
            Table1Row::failed(&suite[i])
        })
    })
    .collect()
}

/// Runs one benchmark of Table I with default engine options.
pub fn table1_row(bench: &Benchmark) -> Table1Row {
    table1_row_with(bench, &EngineOptions::default())
}

/// Runs one benchmark of Table I under explicit engine options. Both
/// decomposed networks are oracle-checked against the input by random
/// simulation (`verified`), so reordering policies cannot silently change
/// a function.
pub fn table1_row_with(bench: &Benchmark, engine: &EngineOptions) -> Table1Row {
    let net = &bench.network;
    let maj_options = BdsMajOptions {
        engine: engine.clone(),
        ..BdsMajOptions::default()
    };
    let with = bds_maj(net, &maj_options);
    let without = bds_pga(net, engine);
    let verified = equiv_sim(net, with.network(), 4, 0xBD5).is_ok()
        && equiv_sim(net, &without.network, 4, 0xBD5).is_ok();
    let status = if with.report().is_degraded() || without.report.is_degraded() {
        RowStatus::Degraded
    } else {
        RowStatus::Ok
    };
    Table1Row {
        name: bench.name,
        group: bench.group,
        maj: with.network().gate_counts(),
        maj_runtime: with.result.runtime,
        pga: without.network.gate_counts(),
        pga_runtime: without.runtime,
        verified,
        status,
    }
}

/// One row of Table II: mapped area/gates/delay for the four flows.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// MCNC or HDL section.
    pub group: Group,
    /// BDS-MAJ synthesis result.
    pub bds_maj: MappedReport,
    /// BDS-PGA synthesis result.
    pub bds_pga: MappedReport,
    /// ABC-like synthesis result.
    pub abc: MappedReport,
    /// DC-like synthesis result.
    pub dc: MappedReport,
    /// Whether all four mapped netlists passed equivalence checking.
    pub verified: bool,
    /// Budget outcome: `Ok`, `Degraded`, or `Limit` (placeholder row).
    pub status: RowStatus,
}

impl Table2Row {
    /// A placeholder row for a benchmark whose task did not finish.
    pub fn failed(bench: &Benchmark) -> Table2Row {
        Table2Row {
            name: bench.name,
            group: bench.group,
            bds_maj: MappedReport::default(),
            bds_pga: MappedReport::default(),
            abc: MappedReport::default(),
            dc: MappedReport::default(),
            verified: false,
            status: RowStatus::Limit,
        }
    }
}

/// Runs the Table II experiment (full synthesis with mapping) on the
/// suite with default engine options and the default worker count.
pub fn run_table2(lib: &Library) -> Vec<Table2Row> {
    run_table2_with(lib, &EngineOptions::default())
}

/// [`run_table2`] under explicit engine options (the `--reorder` knob),
/// on [`pool::default_jobs`] workers.
pub fn run_table2_with(lib: &Library, engine: &EngineOptions) -> Vec<Table2Row> {
    run_table2_jobs(lib, engine, pool::default_jobs())
}

/// [`run_table2_with`] on an explicit worker count. Rows come back in
/// suite order regardless of `jobs`; `jobs == 1` is the exact sequential
/// path.
pub fn run_table2_jobs(lib: &Library, engine: &EngineOptions, jobs: usize) -> Vec<Table2Row> {
    let suite = paper_suite();
    // Same two-level budget sharing as `run_table1_jobs`.
    pool::run_with_budget(jobs, suite.len(), |i, budget| {
        let engine = EngineOptions {
            job_budget: Some(budget.clone()),
            ..engine.clone()
        };
        table2_row_with(&suite[i], lib, &engine)
    })
}

/// [`run_table2_jobs`] under a per-row resource budget with per-task
/// panic isolation (see [`run_table1_budgeted`]).
pub fn run_table2_budgeted(
    lib: &Library,
    engine: &EngineOptions,
    jobs: usize,
    budget: RowBudget,
) -> Vec<Table2Row> {
    let suite = paper_suite();
    pool::run_catching(jobs, suite.len(), |i| {
        table2_row_with(&suite[i], lib, &budget.apply(engine))
    })
    .into_iter()
    .enumerate()
    .map(|(i, r)| {
        r.unwrap_or_else(|msg| {
            eprintln!("{}: task failed: {msg}", suite[i].name);
            Table2Row::failed(&suite[i])
        })
    })
    .collect()
}

/// Runs one benchmark of Table II with default engine options.
pub fn table2_row(bench: &Benchmark, lib: &Library) -> Table2Row {
    table2_row_with(bench, lib, &EngineOptions::default())
}

/// Runs one benchmark of Table II under explicit engine options.
pub fn table2_row_with(bench: &Benchmark, lib: &Library, engine: &EngineOptions) -> Table2Row {
    let net = &bench.network;
    let synth = |optimized: &Network| {
        let mapped = map_network(optimized);
        let ok = equiv_sim(net, &mapped.network, 4, 0xDA13).is_ok();
        (report(&mapped, lib), ok)
    };
    let maj_options = BdsMajOptions {
        engine: engine.clone(),
        ..BdsMajOptions::default()
    };
    let with = bds_maj(net, &maj_options);
    let without = bds_pga(net, engine);
    let status = if with.report().is_degraded() || without.report.is_degraded() {
        RowStatus::Degraded
    } else {
        RowStatus::Ok
    };
    let (r_maj, ok1) = synth(with.network());
    let (r_pga, ok2) = synth(&without.network);
    let (r_abc, ok3) = synth(&abc_flow(net));
    let (r_dc, ok4) = synth(&dc_flow(net, lib).network);
    Table2Row {
        name: bench.name,
        group: bench.group,
        bds_maj: r_maj,
        bds_pga: r_pga,
        abc: r_abc,
        dc: r_dc,
        verified: ok1 && ok2 && ok3 && ok4,
        status,
    }
}

/// Aggregate of [`saving_summary`]: the mean saving over the pairs that
/// define one, plus how many pairs were skipped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SavingSummary {
    /// Mean of `1 - ours/theirs` over the contributing pairs, in percent
    /// (`0.0` when no pair contributes).
    pub percent: f64,
    /// Pairs with a positive denominator that entered the mean.
    pub used: usize,
    /// Pairs excluded for a zero or negative denominator.
    pub skipped: usize,
}

/// Relative saving of `ours` versus `theirs` over paired samples (the
/// paper's "X % less area" style of aggregate). A pair only defines a
/// relative saving when `theirs > 0`; zero/negative denominators are
/// excluded from **both** the sum and the divisor. (The seed's version
/// filtered them from the sum but still divided by the full pair count,
/// silently biasing every reported aggregate toward zero.)
pub fn saving_summary(pairs: &[(f64, f64)]) -> SavingSummary {
    let mut sum = 0.0f64;
    let mut used = 0usize;
    for &(ours, theirs) in pairs {
        if theirs > 0.0 {
            sum += 1.0 - ours / theirs;
            used += 1;
        }
    }
    SavingSummary {
        percent: if used == 0 {
            0.0
        } else {
            100.0 * sum / used as f64
        },
        used,
        skipped: pairs.len() - used,
    }
}

/// Average relative saving of `ours` versus `theirs` over the pairs that
/// actually contribute (see [`saving_summary`]), in percent.
pub fn average_saving(pairs: &[(f64, f64)]) -> f64 {
    saving_summary(pairs).percent
}

/// Wall-clock of a closure, returning the result and elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_saving_basics() {
        assert_eq!(average_saving(&[]), 0.0);
        let s = average_saving(&[(50.0, 100.0), (75.0, 100.0)]);
        assert!((s - 37.5).abs() < 1e-9);
    }

    /// The regression the seed got wrong: a zero-denominator pair must
    /// not drag the mean down. The old implementation returned 25 %
    /// here (sum over 1 contributing pair, divided by 2).
    #[test]
    fn average_saving_skips_zero_denominators_from_the_count() {
        let s = average_saving(&[(50.0, 100.0), (123.0, 0.0)]);
        assert!((s - 50.0).abs() < 1e-9, "got {s}, want 50");
    }

    #[test]
    fn average_saving_skips_negative_denominators_from_the_count() {
        let s = average_saving(&[(50.0, 100.0), (1.0, -2.0), (25.0, 100.0)]);
        assert!((s - 62.5).abs() < 1e-9, "got {s}, want 62.5");
    }

    #[test]
    fn saving_summary_counts_used_and_skipped() {
        let s = saving_summary(&[(50.0, 100.0), (1.0, 0.0), (1.0, -3.0)]);
        assert_eq!((s.used, s.skipped), (1, 2));
        assert!((s.percent - 50.0).abs() < 1e-9);
        let empty = saving_summary(&[]);
        assert_eq!((empty.used, empty.skipped), (0, 0));
        assert_eq!(empty.percent, 0.0);
        let all_skipped = saving_summary(&[(1.0, 0.0), (2.0, -1.0)]);
        assert_eq!((all_skipped.used, all_skipped.skipped), (0, 2));
        assert_eq!(all_skipped.percent, 0.0);
    }

    #[test]
    fn suite_args_parse_and_reject_duplicates() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = parse_suite_args(&args(&["--reorder", "sift", "--jobs", "3"])).unwrap();
        assert_eq!(a.reorder, ReorderPolicy::Sift);
        assert_eq!(a.jobs, 3);
        let d = parse_suite_args(&args(&["--reorder", "none", "--reorder", "sift"]));
        assert_eq!(d.unwrap_err(), "duplicate --reorder flag");
        let j = parse_suite_args(&args(&["--jobs", "2", "--jobs", "4"]));
        assert_eq!(j.unwrap_err(), "duplicate --jobs flag");
        assert!(parse_suite_args(&args(&["--jobs", "0"])).is_err());
        assert!(parse_suite_args(&args(&["--jobs"])).is_err());
        assert!(parse_suite_args(&args(&["--frobnicate"])).is_err());
        let defaults = parse_suite_args(&[]).unwrap();
        assert_eq!(defaults.reorder, ReorderPolicy::Window);
        assert!(defaults.jobs >= 1);
        assert!(!defaults.budget.is_limited());
    }

    #[test]
    fn suite_args_parse_resource_budget_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let a = parse_suite_args(&args(&[
            "--node-limit",
            "5000",
            "--step-limit",
            "200",
            "--timeout",
            "1.5",
        ]))
        .unwrap();
        assert_eq!(a.budget.node_limit, Some(5000));
        assert_eq!(a.budget.step_limit, Some(200));
        assert_eq!(a.budget.timeout, Some(Duration::from_millis(1500)));
        assert!(a.budget.is_limited());
        let limits = a.budget.limits_now();
        assert_eq!(limits.max_live_nodes, Some(5000));
        assert_eq!(limits.max_steps, Some(200));
        assert!(limits.deadline.is_some());
        // Rejections: duplicates, zero, junk, missing values.
        assert!(parse_suite_args(&args(&["--node-limit", "1", "--node-limit", "2"])).is_err());
        assert!(parse_suite_args(&args(&["--step-limit", "0"])).is_err());
        assert!(parse_suite_args(&args(&["--timeout", "-1"])).is_err());
        assert!(parse_suite_args(&args(&["--timeout", "soon"])).is_err());
        assert!(parse_suite_args(&args(&["--node-limit"])).is_err());
    }

    /// A starvation budget on one benchmark: the row must come back
    /// degraded (not hang, not panic) and still verify — degradation
    /// copies original cones, which cannot change the function.
    #[test]
    fn budgeted_table1_row_degrades_gracefully() {
        let suite = paper_suite();
        let alu2 = suite.iter().find(|b| b.name == "alu2").unwrap();
        let budget = RowBudget {
            step_limit: Some(2),
            ..RowBudget::default()
        };
        let row = table1_row_with(alu2, &budget.apply(&EngineOptions::default()));
        assert_eq!(row.status, RowStatus::Degraded);
        assert!(row.verified, "degraded rows must still be equivalent");
    }

    #[test]
    fn table1_row_on_small_benchmark() {
        let suite = paper_suite();
        let alu2 = suite.iter().find(|b| b.name == "alu2").unwrap();
        let row = table1_row(alu2);
        assert!(row.verified, "decompositions must be equivalent");
        assert!(row.maj.decomposition_total() > 0);
        assert!(row.pga.maj == 0, "BDS-PGA produces no MAJ nodes");
    }

    #[test]
    fn table2_row_on_small_benchmark() {
        let suite = paper_suite();
        let f51m = suite.iter().find(|b| b.name == "f51m").unwrap();
        let row = table2_row(f51m, &Library::cmos22());
        assert!(row.verified, "all four flows must be equivalent");
        assert!(row.bds_maj.area > 0.0);
        assert!(row.abc.gate_count > 0);
    }

    /// Determinism across worker counts: the parallel suite run must
    /// produce exactly the rows of the sequential one — same names,
    /// groups, gate counts and verified flags, in the same order.
    #[test]
    fn table1_rows_identical_at_jobs_1_and_4() {
        let engine = EngineOptions::default();
        let seq = run_table1_jobs(&engine, 1);
        let par = run_table1_jobs(&engine, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.group, b.group);
            assert_eq!(a.maj, b.maj, "{}: BDS-MAJ counts differ", a.name);
            assert_eq!(a.pga, b.pga, "{}: BDS-PGA counts differ", a.name);
            assert_eq!(a.verified, b.verified, "{}: verified flag differs", a.name);
        }
    }
}
