//! Shared harness code for the table-reproducing binaries and the
//! Criterion benches: runs every flow of the paper on the 17-benchmark
//! suite and aggregates the Table I / Table II rows.

use baselines::{abc_flow, dc_flow};
use bdsmaj::{bds_maj, bds_pga, BdsMajOptions};
use circuits::suite::{paper_suite, Benchmark, Group};
use decomp::EngineOptions;
pub use decomp::ReorderPolicy;
use logic::{equiv_sim, GateCounts, Network};
use std::time::{Duration, Instant};
use techmap::{map_network, report, Library, MappedReport};

/// Parses the shared `--reorder {none,window,sift}` flag of the table
/// binaries into engine options (all other knobs stay at their defaults).
pub fn engine_options_for(reorder: ReorderPolicy) -> EngineOptions {
    EngineOptions {
        reorder,
        ..EngineOptions::default()
    }
}

/// Shared argv parsing for the table binaries: accepts exactly the
/// `--reorder {none,window,sift}` flag (default: window, the engine's
/// historical behavior) and exits with a usage message on anything else.
pub fn reorder_from_args() -> ReorderPolicy {
    let args: Vec<String> = std::env::args().collect();
    let mut policy = ReorderPolicy::Window;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--reorder" => {
                policy = args
                    .get(i + 1)
                    .and_then(|v| ReorderPolicy::from_flag(v))
                    .unwrap_or_else(|| {
                        eprintln!("--reorder requires one of: none, window, sift");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other} (supported: --reorder {{none,window,sift}})");
                std::process::exit(2);
            }
        }
    }
    policy
}

/// One row of Table I: decomposition node counts for both engines.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// MCNC or HDL section.
    pub group: Group,
    /// BDS-MAJ node counts.
    pub maj: GateCounts,
    /// BDS-MAJ decomposition runtime.
    pub maj_runtime: Duration,
    /// BDS-PGA node counts.
    pub pga: GateCounts,
    /// BDS-PGA decomposition runtime.
    pub pga_runtime: Duration,
    /// Whether both decomposed networks passed equivalence checking.
    pub verified: bool,
}

/// Runs the Table I experiment (BDS-MAJ vs BDS-PGA decomposition) on the
/// full suite with default engine options.
pub fn run_table1() -> Vec<Table1Row> {
    run_table1_with(&EngineOptions::default())
}

/// [`run_table1`] under explicit engine options (the `--reorder` knob).
pub fn run_table1_with(engine: &EngineOptions) -> Vec<Table1Row> {
    paper_suite()
        .iter()
        .map(|b| table1_row_with(b, engine))
        .collect()
}

/// Runs one benchmark of Table I with default engine options.
pub fn table1_row(bench: &Benchmark) -> Table1Row {
    table1_row_with(bench, &EngineOptions::default())
}

/// Runs one benchmark of Table I under explicit engine options. Both
/// decomposed networks are oracle-checked against the input by random
/// simulation (`verified`), so reordering policies cannot silently change
/// a function.
pub fn table1_row_with(bench: &Benchmark, engine: &EngineOptions) -> Table1Row {
    let net = &bench.network;
    let maj_options = BdsMajOptions {
        engine: *engine,
        ..BdsMajOptions::default()
    };
    let with = bds_maj(net, &maj_options);
    let without = bds_pga(net, engine);
    let verified = equiv_sim(net, with.network(), 4, 0xBD5).is_ok()
        && equiv_sim(net, &without.network, 4, 0xBD5).is_ok();
    Table1Row {
        name: bench.name,
        group: bench.group,
        maj: with.network().gate_counts(),
        maj_runtime: with.result.runtime,
        pga: without.network.gate_counts(),
        pga_runtime: without.runtime,
        verified,
    }
}

/// One row of Table II: mapped area/gates/delay for the four flows.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// MCNC or HDL section.
    pub group: Group,
    /// BDS-MAJ synthesis result.
    pub bds_maj: MappedReport,
    /// BDS-PGA synthesis result.
    pub bds_pga: MappedReport,
    /// ABC-like synthesis result.
    pub abc: MappedReport,
    /// DC-like synthesis result.
    pub dc: MappedReport,
    /// Whether all four mapped netlists passed equivalence checking.
    pub verified: bool,
}

/// Runs the Table II experiment (full synthesis with mapping) on the
/// suite with default engine options.
pub fn run_table2(lib: &Library) -> Vec<Table2Row> {
    run_table2_with(lib, &EngineOptions::default())
}

/// [`run_table2`] under explicit engine options (the `--reorder` knob).
pub fn run_table2_with(lib: &Library, engine: &EngineOptions) -> Vec<Table2Row> {
    paper_suite()
        .iter()
        .map(|b| table2_row_with(b, lib, engine))
        .collect()
}

/// Runs one benchmark of Table II with default engine options.
pub fn table2_row(bench: &Benchmark, lib: &Library) -> Table2Row {
    table2_row_with(bench, lib, &EngineOptions::default())
}

/// Runs one benchmark of Table II under explicit engine options.
pub fn table2_row_with(bench: &Benchmark, lib: &Library, engine: &EngineOptions) -> Table2Row {
    let net = &bench.network;
    let synth = |optimized: &Network| {
        let mapped = map_network(optimized);
        let ok = equiv_sim(net, &mapped.network, 4, 0xDA13).is_ok();
        (report(&mapped, lib), ok)
    };
    let maj_options = BdsMajOptions {
        engine: *engine,
        ..BdsMajOptions::default()
    };
    let (r_maj, ok1) = synth(bds_maj(net, &maj_options).network());
    let (r_pga, ok2) = synth(&bds_pga(net, engine).network);
    let (r_abc, ok3) = synth(&abc_flow(net));
    let (r_dc, ok4) = synth(&dc_flow(net, lib).network);
    Table2Row {
        name: bench.name,
        group: bench.group,
        bds_maj: r_maj,
        bds_pga: r_pga,
        abc: r_abc,
        dc: r_dc,
        verified: ok1 && ok2 && ok3 && ok4,
    }
}

/// Average relative saving of `ours` versus `theirs` over paired samples
/// (the paper's "X % less area" style of aggregate): mean of
/// `1 - ours/theirs`, in percent.
pub fn average_saving(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let sum: f64 = pairs
        .iter()
        .filter(|(_, theirs)| *theirs > 0.0)
        .map(|(ours, theirs)| 1.0 - ours / theirs)
        .sum();
    100.0 * sum / pairs.len() as f64
}

/// Wall-clock of a closure, returning the result and elapsed time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_saving_basics() {
        assert_eq!(average_saving(&[]), 0.0);
        let s = average_saving(&[(50.0, 100.0), (75.0, 100.0)]);
        assert!((s - 37.5).abs() < 1e-9);
    }

    #[test]
    fn table1_row_on_small_benchmark() {
        let suite = paper_suite();
        let alu2 = suite.iter().find(|b| b.name == "alu2").unwrap();
        let row = table1_row(alu2);
        assert!(row.verified, "decompositions must be equivalent");
        assert!(row.maj.decomposition_total() > 0);
        assert!(row.pga.maj == 0, "BDS-PGA produces no MAJ nodes");
    }

    #[test]
    fn table2_row_on_small_benchmark() {
        let suite = paper_suite();
        let f51m = suite.iter().find(|b| b.name == "f51m").unwrap();
        let row = table2_row(f51m, &Library::cmos22());
        assert!(row.verified, "all four flows must be equivalent");
        assert!(row.bds_maj.area > 0.0);
        assert!(row.abc.gate_count > 0);
    }
}
