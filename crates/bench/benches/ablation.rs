//! Ablation benchmarks for the design choices DESIGN.md §7 calls out:
//! runtime impact of the m-dominator candidate cap, the balancing
//! iteration limit, the generalized-cofactor operator and the partition
//! support bound. (The quality side of the ablation is printed by
//! `cargo run -p bench --bin ablation`.)

use bdsmaj::{bds_maj, BdsMajOptions, CofactorOp};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_candidate_cap(c: &mut Criterion) {
    let net = circuits::suite::benchmark("Wallace 16 bit").unwrap();
    let mut group = c.benchmark_group("ablation/m_dominator_cap");
    group.sample_size(10);
    for cap in [2usize, 8, 32] {
        let mut opts = BdsMajOptions::default();
        opts.maj.max_candidates = cap;
        group.bench_function(format!("cap_{cap}"), |b| {
            b.iter(|| std::hint::black_box(bds_maj(&net, &opts)));
        });
    }
    group.finish();
}

fn bench_iterations(c: &mut Criterion) {
    let net = circuits::suite::benchmark("Div 18 bit").unwrap();
    let mut group = c.benchmark_group("ablation/balance_iterations");
    group.sample_size(10);
    for iters in [0usize, 5, 20] {
        let mut opts = BdsMajOptions::default();
        opts.maj.max_iterations = iters;
        group.bench_function(format!("iters_{iters}"), |b| {
            b.iter(|| std::hint::black_box(bds_maj(&net, &opts)));
        });
    }
    group.finish();
}

fn bench_cofactor_op(c: &mut Criterion) {
    let net = circuits::suite::benchmark("MAC 16 bit").unwrap();
    let mut group = c.benchmark_group("ablation/cofactor_op");
    group.sample_size(10);
    for (name, op) in [
        ("restrict", CofactorOp::Restrict),
        ("constrain", CofactorOp::Constrain),
    ] {
        let mut opts = BdsMajOptions::default();
        opts.maj.cofactor = op;
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(bds_maj(&net, &opts)));
        });
    }
    group.finish();
}

fn bench_partition_bound(c: &mut Criterion) {
    let net = circuits::suite::benchmark("SQRT 32 bit").unwrap();
    let mut group = c.benchmark_group("ablation/partition_support");
    group.sample_size(10);
    for bound in [8usize, 12, 16] {
        let mut opts = BdsMajOptions::default();
        opts.engine.partition.max_support = bound;
        group.bench_function(format!("support_{bound}"), |b| {
            b.iter(|| std::hint::black_box(bds_maj(&net, &opts)));
        });
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_candidate_cap,
    bench_iterations,
    bench_cofactor_op,
    bench_partition_bound
);
criterion_main!(ablation);
