//! End-to-end flow benchmarks on paper benchmarks: full BDS-MAJ / BDS-PGA
//! / ABC-like optimization runtime (the "Seconds" columns of Table I and
//! the §V-B.3 runtime claim).

use baselines::abc_flow;
use bdsmaj::{bds_maj, bds_pga, BdsMajOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use decomp::EngineOptions;

fn bench_flows(c: &mut Criterion) {
    // Small/medium benchmarks so each sample stays in the millisecond
    // range; the table binaries cover the full suite.
    for name in ["alu2", "f51m", "CLA 64 bit", "Wallace 16 bit"] {
        let net = circuits::suite::benchmark(name).expect("known benchmark");
        let tag = name.replace(' ', "_");
        let mut group = c.benchmark_group(format!("flow/{tag}"));
        group.sample_size(10);
        group.bench_function("bds_maj", |b| {
            b.iter(|| std::hint::black_box(bds_maj(&net, &BdsMajOptions::default())));
        });
        group.bench_function("bds_pga", |b| {
            b.iter(|| std::hint::black_box(bds_pga(&net, &EngineOptions::default())));
        });
        group.bench_function("abc", |b| {
            b.iter(|| std::hint::black_box(abc_flow(&net)));
        });
        group.finish();
    }
}

fn bench_mapping(c: &mut Criterion) {
    let net = circuits::suite::benchmark("Wallace 16 bit").unwrap();
    let optimized = bds_maj(&net, &BdsMajOptions::default());
    c.bench_function("map/wallace16_bdsmaj", |b| {
        b.iter(|| std::hint::black_box(techmap::map_network(optimized.network())));
    });
}

criterion_group!(flows, bench_flows, bench_mapping);
criterion_main!(flows);
