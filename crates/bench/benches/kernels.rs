//! Microbenchmarks of the BDD and decomposition kernels: the ITE operator,
//! the generalized cofactors, the dominator scan and Algorithm 1 itself.

use bdd::Manager;
use bdsmaj::{maj_decompose, MajConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decomp::{find_decomposition, SearchOptions};

/// Builds the carry-out of an n-bit adder: a majority-heavy function with
/// a linear BDD.
fn carry_function(m: &mut Manager, bits: u32) -> bdd::Ref {
    let mut carry = m.zero();
    for i in 0..bits {
        let a = m.var(2 * i);
        let b = m.var(2 * i + 1);
        carry = m.maj(a, b, carry);
    }
    carry
}

/// Builds a mid column sum bit of a small multiplier: a dense function
/// exercising ITE hard.
fn multiplier_bit(m: &mut Manager, bits: u32) -> bdd::Ref {
    let a: Vec<bdd::Ref> = (0..bits).map(|i| m.var(i)).collect();
    let b: Vec<bdd::Ref> = (0..bits).map(|i| m.var(bits + i)).collect();
    let width = 2 * bits as usize;
    let mut columns: Vec<Vec<bdd::Ref>> = vec![Vec::new(); width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = m.and(ai, bj);
            columns[i + j].push(pp);
        }
    }
    let mut result = m.zero();
    for col in 0..width.min(bits as usize) {
        let mut bits_in_col = std::mem::take(&mut columns[col]);
        while bits_in_col.len() >= 2 {
            if bits_in_col.len() >= 3 {
                let (x, y, z) = (bits_in_col[0], bits_in_col[1], bits_in_col[2]);
                let xy = m.xor(x, y);
                let s = m.xor(xy, z);
                let c = m.maj(x, y, z);
                bits_in_col.drain(..3);
                bits_in_col.push(s);
                if col + 1 < width {
                    columns[col + 1].push(c);
                }
            } else {
                let (x, y) = (bits_in_col[0], bits_in_col[1]);
                let s = m.xor(x, y);
                let c = m.and(x, y);
                bits_in_col.drain(..2);
                bits_in_col.push(s);
                if col + 1 < width {
                    columns[col + 1].push(c);
                }
            }
        }
        result = bits_in_col.first().copied().unwrap_or_else(|| m.zero());
    }
    result
}

fn bench_ite(c: &mut Criterion) {
    c.bench_function("ite/adder_carry_16", |bench| {
        bench.iter_batched(
            Manager::new,
            |mut m| carry_function(&mut m, 16),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("ite/multiplier_bit_6", |bench| {
        bench.iter_batched(
            Manager::new,
            |mut m| multiplier_bit(&mut m, 6),
            BatchSize::SmallInput,
        );
    });
}

/// Op storms: dense streams of one connective, sized so the computed cache
/// sees heavy traffic (the memory-system hot path, isolated from the
/// decomposition logic above it).
fn bench_storms(c: &mut Criterion) {
    c.bench_function("storm/ite", |bench| {
        bench.iter_batched(
            Manager::new,
            |mut m| {
                let vars: Vec<bdd::Ref> = (0..12).map(|i| m.var(i)).collect();
                let mut acc = m.one();
                for _ in 0..40 {
                    for w in vars.windows(3) {
                        let t = m.ite(w[0], w[1], w[2]);
                        acc = m.ite(t, acc, w[1]);
                    }
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("storm/and", |bench| {
        bench.iter_batched(
            Manager::new,
            |mut m| {
                let vars: Vec<bdd::Ref> = (0..12).map(|i| m.var(i)).collect();
                let mut acc = m.zero();
                for r in 0..40 {
                    let mut conj = m.one();
                    for (i, &v) in vars.iter().enumerate() {
                        conj = m.and(conj, if (i + r) % 2 == 0 { v } else { !v });
                    }
                    acc = m.or(acc, conj);
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("storm/xor", |bench| {
        bench.iter_batched(
            Manager::new,
            |mut m| {
                let vars: Vec<bdd::Ref> = (0..12).map(|i| m.var(i)).collect();
                let mut acc = m.zero();
                for r in 0..40 {
                    for (i, &v) in vars.iter().enumerate() {
                        acc = m.xor(acc, if (i ^ r) & 1 == 0 { v } else { !v });
                    }
                }
                acc
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_generalized_cofactors(c: &mut Criterion) {
    c.bench_function("restrict/carry_care_set", |bench| {
        let mut m = Manager::new();
        let f = carry_function(&mut m, 16);
        let care = {
            let x = m.var(0);
            let y = m.var(7);
            m.or(x, y)
        };
        bench.iter(|| std::hint::black_box(m.restrict(f, care)));
    });
    c.bench_function("constrain/carry_care_set", |bench| {
        let mut m = Manager::new();
        let f = carry_function(&mut m, 16);
        let care = {
            let x = m.var(0);
            let y = m.var(7);
            m.or(x, y)
        };
        bench.iter(|| std::hint::black_box(m.constrain(f, care)));
    });
}

fn bench_dominator_scan(c: &mut Criterion) {
    c.bench_function("dominators/find_decomposition_carry12", |bench| {
        let mut m = Manager::new();
        let f = carry_function(&mut m, 12);
        let opts = SearchOptions::default();
        bench.iter(|| std::hint::black_box(find_decomposition(&mut m, f, &opts)));
    });
}

fn bench_maj_decompose(c: &mut Criterion) {
    c.bench_function("maj_decompose/carry8", |bench| {
        let mut m = Manager::new();
        let f = carry_function(&mut m, 8);
        let config = MajConfig::default();
        bench.iter(|| std::hint::black_box(maj_decompose(&mut m, f, &config)));
    });
}

criterion_group!(
    kernels,
    bench_ite,
    bench_storms,
    bench_generalized_cofactors,
    bench_dominator_scan,
    bench_maj_decompose
);
criterion_main!(kernels);
