//! Schema guard for the committed `BENCH_kernels.json`.
//!
//! The tracked artifact is consumed by people and scripts diffing kernel
//! performance across PRs, so its shape is a contract: this test fails
//! when a field the dashboarding relies on is renamed or dropped — or
//! when the committed file predates a schema change and needs
//! regenerating (`cargo run --release -p bench --bin kernels`).
//!
//! The parser below is a minimal recursive-descent JSON reader (the
//! workspace takes no dependencies); it validates the whole document and
//! exposes just enough structure to assert on.

use std::collections::HashMap;
use std::path::Path;

#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(HashMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn expect_field(&self, ctx: &str, key: &str) -> &Json {
        self.get(key)
            .unwrap_or_else(|| panic!("{ctx}: missing field `{key}`"))
    }

    fn as_arr(&self, ctx: &str) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("{ctx}: expected array, got {other:?}"),
        }
    }

    fn as_num(&self, ctx: &str) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("{ctx}: expected number, got {other:?}"),
        }
    }

    fn as_str(&self, ctx: &str) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("{ctx}: expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.bytes.get(self.pos + 1);
                    self.pos += 2;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("bad UTF-8 at offset {start}"))?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[test]
fn committed_bench_json_keeps_its_schema() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let doc = Parser::parse(&text).unwrap_or_else(|e| panic!("BENCH_kernels.json: {e}"));

    // The parallel-suite contract: wall clocks, worker count, and a
    // status per row (so resource-degraded runs stay visible).
    let suite = doc.expect_field("top level", "suite");
    suite
        .expect_field("suite", "wall_clock_sec")
        .as_num("suite.wall_clock_sec");
    suite
        .expect_field("suite", "wall_clock_par_sec")
        .as_num("suite.wall_clock_par_sec");
    let jobs = suite.expect_field("suite", "jobs").as_num("suite.jobs");
    assert!(jobs >= 1.0, "suite.jobs must be at least 1, got {jobs}");
    // Machine context for the speedup number: a committed file produced
    // on a single-core container legitimately reports speedup < 1.0, and
    // `cores` is what lets a reader tell that apart from a regression.
    let cores = suite.expect_field("suite", "cores").as_num("suite.cores");
    assert!(cores >= 1.0, "suite.cores must be at least 1, got {cores}");
    let rows = suite.expect_field("suite", "rows").as_arr("suite.rows");
    assert!(!rows.is_empty(), "suite.rows must not be empty");
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("suite.rows[{i}]");
        row.expect_field(&ctx, "name").as_str(&ctx);
        let status = row.expect_field(&ctx, "status").as_str(&ctx);
        assert!(
            matches!(status, "ok" | "retried" | "degraded"),
            "{ctx}: unexpected status {status:?}"
        );
    }

    // The forked-apply section (PR 9): per-width baselines where the
    // first run is the sequential kernel itself. `cones`/`cores` give a
    // reader the context to tell a single-core container's flat curve
    // apart from a parallel regression. PR 11 added the shared (L2)
    // computed-cache counters and the work-stealing tally per run.
    let par = doc.expect_field("top level", "par_apply");
    par.expect_field("par_apply", "cone_nodes")
        .as_num("par_apply.cone_nodes");
    let entries = par
        .expect_field("par_apply", "shared_cache_entries")
        .as_num("par_apply.shared_cache_entries");
    assert!(
        entries >= 1.0,
        "par_apply.shared_cache_entries must be at least 1"
    );
    let pcores = par
        .expect_field("par_apply", "cores")
        .as_num("par_apply.cores");
    assert!(pcores >= 1.0, "par_apply.cores must be at least 1");
    let pruns = par
        .expect_field("par_apply", "runs")
        .as_arr("par_apply.runs");
    assert!(!pruns.is_empty(), "par_apply.runs must not be empty");
    for (i, run) in pruns.iter().enumerate() {
        let ctx = format!("par_apply.runs[{i}]");
        for key in [
            "threads",
            "ops",
            "cache_lookups",
            "cache_hit_rate",
            "shared_lookups",
            "shared_hits",
            "shared_hit_rate",
            "shared_insertions",
            "steals",
            "micros",
            "mlookups_per_sec",
            "result_nodes",
        ] {
            run.expect_field(&ctx, key).as_num(&ctx);
        }
    }
    let baseline = pruns[0]
        .expect_field("par_apply.runs[0]", "threads")
        .as_num("par_apply.runs[0].threads");
    assert!(
        baseline == 1.0,
        "the first par_apply run must be the threads=1 sequential baseline, got {baseline}"
    );
    // threads = 1 is the exact sequential path: no forked tasks exist,
    // so nothing can be stolen. (The L2 tier is still probed — the
    // two-tier lookup is unconditional — so `shared_lookups` may be
    // nonzero even here.)
    let seq_steals = pruns[0]
        .expect_field("par_apply.runs[0]", "steals")
        .as_num("par_apply.runs[0].steals");
    assert!(
        seq_steals == 0.0,
        "the threads=1 baseline must report zero steals, got {seq_steals}"
    );

    // The storm sections carry the kernel-telemetry counters that
    // bdslint's liveness rule requires someone to read; keeping them in
    // the schema is that someone.
    let gc = doc.expect_field("top level", "gc_storm");
    for key in [
        "ops",
        "cache_lookups",
        "cache_hit_rate",
        "reclaimed",
        "garbage_estimate",
    ] {
        gc.expect_field("gc_storm", key).as_num("gc_storm");
    }
    let sift = doc.expect_field("top level", "sift_storm");
    for key in ["swaps", "vars_sifted", "groups", "converge_passes"] {
        sift.expect_field("sift_storm", key).as_num("sift_storm");
    }
    let storms = doc.expect_field("top level", "storms").as_arr("storms");
    assert!(!storms.is_empty(), "storms must not be empty");
}
