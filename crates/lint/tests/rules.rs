//! Fixture-driven tests: every rule has a violating fixture (caught), a
//! clean fixture (passes, including annotated escapes with reasons), and
//! the annotation-hygiene cases (allow without a reason is rejected and
//! does not suppress).
//!
//! Each fixture is a miniature workspace root under `tests/fixtures/`,
//! scanned with a configuration narrowed to the rule under test — the
//! real-workspace configuration is exercised end to end by the
//! `workspace_clean` self-test.

use lint::rules::{Config, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// A config with every registry empty — individual tests switch on just
/// the machinery they exercise.
fn base_config() -> Config {
    Config {
        kernel_dir: "crates/bdd/src",
        kernel_fns: &[],
        gc_free_files: &[],
        gc_methods: &[],
        panic_free_files: &[],
        telemetry_structs: &[],
        ref_ctor_dir: "",
        ref_encoding_file: "",
        ref_ctor_fns: &[],
        cas_dir: "",
        cas_publication_fns: &[],
        cas_state_fields: &[],
    }
}

fn lint_fixture(name: &str, cfg: &Config) -> Vec<Finding> {
    lint::lint_root_with(&fixture(name), cfg).expect("fixture scan")
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- rule 1

fn kernel_cfg() -> Config {
    Config {
        kernel_fns: &["ite_rec", "xor_rec"],
        ..base_config()
    }
}

#[test]
fn kernel_tick_violations_are_caught() {
    let findings = lint_fixture("kernel_tick/bad", &kernel_cfg());
    assert_eq!(
        rules_of(&findings),
        ["kernel-tick", "kernel-tick"],
        "{findings:?}"
    );
    assert!(findings[0].message.contains("mk"), "{}", findings[0]);
    assert!(
        findings[1].message.contains("never calls"),
        "{}",
        findings[1]
    );
}

#[test]
fn kernel_tick_clean_passes() {
    let findings = lint_fixture("kernel_tick/good", &kernel_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn kernel_registry_drift_is_a_finding() {
    // The gc/bad tree has a kernel dir, but no `ite_rec` anywhere: a
    // rename that dodges the registry must break loudly.
    let cfg = Config {
        kernel_fns: &["ite_rec"],
        ..base_config()
    };
    let findings = lint_fixture("gc/bad", &cfg);
    assert_eq!(rules_of(&findings), ["kernel-tick"], "{findings:?}");
    assert!(
        findings[0].message.contains("registered kernel"),
        "{}",
        findings[0]
    );
}

// ---------------------------------------------------------------- rule 2

fn gc_cfg() -> Config {
    Config {
        gc_free_files: &["crates/bdd/src/ops.rs"],
        gc_methods: &["collect", "maybe_collect", "sift"],
        ..base_config()
    }
}

#[test]
fn gc_calls_in_kernel_files_are_caught() {
    let findings = lint_fixture("gc/bad", &gc_cfg());
    assert_eq!(
        rules_of(&findings),
        ["gc-in-kernel", "gc-in-kernel"],
        "{findings:?}"
    );
}

#[test]
fn gc_clean_passes_with_annotated_escape_and_test_code() {
    let findings = lint_fixture("gc/good", &gc_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 3

#[test]
fn unbalanced_protect_release_is_caught() {
    let findings = lint_fixture("protect/bad", &base_config());
    assert_eq!(rules_of(&findings), ["protect-release"], "{findings:?}");
    assert!(findings[0].message.contains("2 protect"), "{}", findings[0]);
}

#[test]
fn balanced_and_annotated_transfers_pass() {
    let findings = lint_fixture("protect/good", &base_config());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 4

fn panic_cfg() -> Config {
    Config {
        panic_free_files: &["crates/logic/src/blif.rs"],
        ..base_config()
    }
}

#[test]
fn panic_surfaces_are_caught() {
    let findings = lint_fixture("panic/bad", &panic_cfg());
    assert_eq!(
        rules_of(&findings),
        ["panic-surface", "panic-surface", "panic-surface"],
        "{findings:?}"
    );
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("indexing") && all.contains("unwrap") && all.contains("panic!"));
}

#[test]
fn panic_free_reader_with_annotated_dead_arm_passes() {
    let findings = lint_fixture("panic/good", &panic_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 5

#[test]
fn unsafe_without_safety_comment_is_caught() {
    let findings = lint_fixture("unsafe/bad", &base_config());
    assert_eq!(rules_of(&findings), ["unsafe-safety"], "{findings:?}");
}

#[test]
fn unsafe_with_safety_comment_passes() {
    let findings = lint_fixture("unsafe/good", &base_config());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 6

fn telemetry_cfg() -> Config {
    Config {
        telemetry_structs: &[("CacheStats", "crates/bdd/src/manager.rs")],
        ..base_config()
    }
}

#[test]
fn dead_telemetry_field_is_caught() {
    let findings = lint_fixture("telemetry/bad", &telemetry_cfg());
    assert_eq!(rules_of(&findings), ["telemetry-liveness"], "{findings:?}");
    assert!(findings[0].message.contains("lookups"), "{}", findings[0]);
    // The in-module hit_rate() read of `lookups` must not have counted.
    assert_eq!(findings[0].file, "crates/bdd/src/manager.rs");
}

#[test]
fn fully_read_telemetry_passes() {
    let findings = lint_fixture("telemetry/good", &telemetry_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 7

fn complement_cfg() -> Config {
    Config {
        ref_ctor_dir: "crates/bdd/src",
        ref_encoding_file: "crates/bdd/src/reference.rs",
        ref_ctor_fns: &["mk_regular", "lookup", "function_of"],
        ..base_config()
    }
}

#[test]
fn raw_ref_construction_is_caught() {
    let findings = lint_fixture("complement/bad", &complement_cfg());
    assert_eq!(
        rules_of(&findings),
        ["complement-canonical", "complement-canonical"],
        "{findings:?}"
    );
    let all = findings
        .iter()
        .map(|f| f.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        all.contains("Ref::from_raw(") && all.contains("Ref::new("),
        "{all}"
    );
}

#[test]
fn registered_constructors_encoding_module_and_tests_pass() {
    let findings = lint_fixture("complement/good", &complement_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- rule 8

fn cas_cfg() -> Config {
    Config {
        cas_dir: "crates/bdd/src",
        cas_publication_fns: &["try_mk", "publish"],
        cas_state_fields: &["buckets", "cells", "occupied", "tag_word", "payload_word"],
        ..base_config()
    }
}

#[test]
fn cas_writes_outside_publication_or_undocumented_are_caught() {
    let findings = lint_fixture("cas/bad", &cas_cfg());
    assert_eq!(
        rules_of(&findings),
        [
            "cas-publication", // undocumented try_mk CAS
            "cas-publication", // out-of-protocol buckets store
            "cas-publication", // undocumented publish tag store
            "cas-publication", // out-of-protocol tag_word store
        ],
        "{findings:?}"
    );
    assert!(
        findings[0].message.contains("// ordering:"),
        "{}",
        findings[0]
    );
    assert!(
        findings[1].message.contains("outside the registered"),
        "{}",
        findings[1]
    );
    assert!(
        findings[2].message.contains("// ordering:") && findings[2].message.contains("publish"),
        "{}",
        findings[2]
    );
    assert!(
        findings[3].message.contains("outside the registered")
            && findings[3].message.contains("tag_word"),
        "{}",
        findings[3]
    );
}

#[test]
fn documented_publication_quiescent_mutators_and_escapes_pass() {
    let findings = lint_fixture("cas/good", &cas_cfg());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn cas_registry_drift_is_a_finding() {
    // No `claim_slot` anywhere under the CAS dir: a rename that dodges
    // the publication registry must break loudly.
    let cfg = Config {
        cas_publication_fns: &["claim_slot"],
        ..cas_cfg()
    };
    let findings = lint_fixture("cas/good", &cfg);
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("registered publication function `claim_slot`")),
        "{findings:?}"
    );
}

// ----------------------------------------------------------- annotations

#[test]
fn allow_without_reason_is_rejected_and_does_not_suppress() {
    let findings = lint_fixture("annotation/bad", &panic_cfg());
    let rules = rules_of(&findings);
    // The reasonless allow is a finding AND the indexing it tried to
    // suppress still fires; the unknown-rule annotation is a finding too.
    assert!(rules.contains(&"annotation"), "{findings:?}");
    assert!(rules.contains(&"panic-surface"), "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("without a justification")),
        "{findings:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("unknown rule `made-up-rule`")),
        "{findings:?}"
    );
}

// ----------------------------------------------------------------- output

#[test]
fn json_output_is_machine_readable() {
    let findings = lint_fixture("panic/bad", &panic_cfg());
    let json = lint::findings_to_json(&findings);
    assert!(json.starts_with('['));
    assert!(json.contains("\"rule\": \"panic-surface\""));
    assert!(json.contains("\"file\": \"crates/logic/src/blif.rs\""));
    // Every finding carries the four fields.
    assert_eq!(json.matches("\"line\":").count(), findings.len());
    // And an empty run serializes to an empty array.
    assert_eq!(lint::findings_to_json(&[]), "[]\n");
}

#[test]
fn text_output_format_is_file_line_rule_message() {
    let findings = lint_fixture("unsafe/bad", &base_config());
    let line = findings[0].to_string();
    assert!(
        line.starts_with("crates/core/src/lib.rs:3: unsafe-safety: "),
        "{line}"
    );
}
