// Fixture: clean kernel file. Iterator `.collect()` calls in the test
// module are out of scope, and the one annotated call carries its
// justification.
impl Manager {
    fn and_rec(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.tick()?;
        Ok(self.mk(v, e, t))
    }

    fn diagnostics_only(&mut self) {
        // bdslint: allow(gc-in-kernel) -- debug hook, never on a recursion path
        self.maybe_collect();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn iterator_collect_is_fine_here() {
        let v: Vec<u32> = (0..4).collect();
        let mut m = Manager::new();
        m.collect();
        assert_eq!(v.len(), 4);
    }
}
