// Fixture: a kernel file calling GC and reorder entry points — exactly
// what the quiescent-point contract forbids.
impl Manager {
    fn and_rec(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.tick()?;
        self.maybe_collect();
        let r = self.mk(v, e, t);
        self.sift(&cfg);
        Ok(r)
    }
}
