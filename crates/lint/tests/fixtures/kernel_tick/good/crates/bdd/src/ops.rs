// Fixture: both kernels check the budget before any mk/recursion.
// Terminal cases before the tick are fine — the contract is only that
// the budget check precedes node construction and self-recursion.
impl Manager {
    fn ite_rec(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, LimitExceeded> {
        if f.is_one() {
            return Ok(g);
        }
        self.tick()?;
        let t = self.ite_rec(f1, g1, h1)?;
        let r = self.mk(v, e, t);
        Ok(r)
    }

    fn xor_rec(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.tick()?;
        let t = self.xor_rec(f1, g1)?;
        Ok(self.mk(v, e, t))
    }
}
