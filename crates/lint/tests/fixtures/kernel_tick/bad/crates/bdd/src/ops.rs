// Fixture: two governance violations — a kernel that builds a node
// before ticking, and a kernel that never ticks at all.
impl Manager {
    fn ite_rec(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, LimitExceeded> {
        let r = self.mk(v, e, t);
        self.tick()?;
        Ok(r)
    }

    fn xor_rec(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        if f == g {
            return Ok(Ref::ZERO);
        }
        let t = self.xor_rec(f1, g1)?;
        Ok(t)
    }
}
