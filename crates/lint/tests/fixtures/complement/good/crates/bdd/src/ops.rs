// Fixture: clean kernel file under the complement-canonical rule.
// Registered constructors may mint refs from raw parts, other code goes
// through `mk`/operators, a different type's `::new(` is out of scope,
// test code is exempt, and the one escape hatch carries a justification.
impl Manager {
    fn mk_regular(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        Ref::new(NodeId(idx), false)
    }

    fn lookup(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<Ref> {
        Some(Ref::from_raw(e.result))
    }

    fn uses_the_public_surface(&mut self, f: Ref, g: Ref) -> Ref {
        let probe = WeakRef::new(f.node(), false);
        let _ = probe;
        self.ite(f, g, !g)
    }

    fn serde_escape(&mut self, bits: u64) -> Ref {
        // bdslint: allow(complement-canonical) -- decoding a checkpointed
        // ref whose invariant was validated at save time
        Ref::from_raw(bits as u32)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_build_raw_refs() {
        let r = Ref::new(NodeId(7), true);
        assert!(r.is_complemented());
    }
}
