// Fixture: the edge-encoding module owns the bit layout and is exempt
// from the raw-construction ban.
impl Ref {
    pub fn new(id: NodeId, complemented: bool) -> Ref {
        Ref(id.0 << 1 | complemented as u32)
    }

    pub fn flipped(self) -> Ref {
        Ref::from_raw(self.0 ^ 1)
    }
}
