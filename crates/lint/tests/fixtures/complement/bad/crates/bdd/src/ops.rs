// Fixture: raw `Ref` construction outside the registered constructors.
// Both hand-built refs could put a complement bit on a 1-edge; each must
// be a `complement-canonical` finding.
impl Manager {
    fn sneaky_not(&mut self, f: Ref) -> Ref {
        Ref::from_raw(f.raw() ^ 1)
    }

    fn hand_rolled_edge(&mut self, id: NodeId) -> Ref {
        Ref::new(id, true)
    }
}
