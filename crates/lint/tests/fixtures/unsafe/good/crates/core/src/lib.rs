// Fixture: the justification rides directly above the unsafe block.
fn read_first(p: *const u32) -> u32 {
    // SAFETY: caller guarantees `p` points at a live, aligned u32.
    unsafe { *p }
}
