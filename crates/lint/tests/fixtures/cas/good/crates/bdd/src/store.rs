//! Fixture: the publication protocol done right — documented atomics in
//! the registered functions, `get_mut()` on quiescent `&mut` paths, an
//! annotated escape, and test code exempt.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

pub struct NodeStore {
    buckets: Vec<AtomicU32>,
    occupied: AtomicU32,
}

pub struct SharedEntry {
    tag_word: AtomicU64,
    payload_word: AtomicU64,
}

pub struct SharedCache {
    slots: Vec<SharedEntry>,
}

impl SharedCache {
    /// The shared-cache publication protocol done right: claim CAS, then
    /// payload and tag stores, every ordering justified.
    pub fn publish(&self, i: usize, tag: u64, payload: u64) {
        let e = &self.slots[i];
        // ordering: Relaxed — the claim CAS only arbitrates writers; the
        // stores below carry their own Release edges.
        if e.tag_word
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // ordering: Release — readers Acquire-load the payload.
        e.payload_word.store(payload, Ordering::Release);
        // ordering: Release — tag-last publishes the payload store.
        e.tag_word.store(tag, Ordering::Release);
    }

    /// Quiescent clear goes through `get_mut()` — not an atomic call, so
    /// the rule does not apply.
    pub fn clear(&mut self) {
        for e in self.slots.iter_mut() {
            *e.tag_word.get_mut() = 0;
            *e.payload_word.get_mut() = 0;
        }
    }
}

impl NodeStore {
    pub fn try_mk(&self, i: usize, idx: u32) -> u32 {
        // ordering: Release on success publishes the slot's field writes
        // to every prober; Acquire on failure so the winner's fields are
        // readable for the re-check.
        match self.buckets[i].compare_exchange(0, idx, Ordering::Release, Ordering::Acquire) {
            Ok(_) => {
                // ordering: Relaxed — occupancy is a heuristic counter
                // reconciled at quiescent points.
                self.occupied.fetch_add(1, Ordering::Relaxed);
                idx
            }
            Err(winner) => winner,
        }
    }

    /// Quiescent `&mut` mutation goes through `get_mut()` — not an
    /// atomic call, so the rule does not apply.
    pub fn set_occupied(&mut self, n: u32) {
        *self.occupied.get_mut() = n;
    }

    /// A deliberate out-of-protocol write, justified and annotated.
    pub fn repair_reset(&self) {
        // bdslint: allow(cas-publication) -- single-threaded repair path;
        // runs strictly before any shared session exists.
        self.occupied.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let store = NodeStore {
            buckets: Vec::new(),
            occupied: AtomicU32::new(0),
        };
        store.occupied.store(7, Ordering::Relaxed);
        assert_eq!(store.occupied.load(Ordering::Relaxed), 7);
    }
}
