//! Fixture: shared-table atomics that break the publication protocol,
//! for both the unique table (`buckets`) and the shared computed cache
//! (`tag_word`/`payload_word`).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

pub struct NodeStore {
    buckets: Vec<AtomicU32>,
    occupied: AtomicU32,
}

impl NodeStore {
    /// Registered publication function, but the CAS carries no
    /// memory-ordering justification: caught.
    pub fn try_mk(&self, i: usize, idx: u32) -> u32 {
        // An undocumented publication CAS.
        match self.buckets[i].compare_exchange(0, idx, Ordering::Release, Ordering::Acquire) {
            Ok(_) => idx,
            Err(winner) => winner,
        }
    }

    /// Not a registered publication function: even a documented atomic
    /// write to table state is caught.
    pub fn sneak_insert(&self, i: usize, idx: u32) {
        // ordering: Release — irrelevant, this bypasses the protocol.
        self.buckets[i].store(idx, Ordering::Release);
    }
}

pub struct SharedEntry {
    tag_word: AtomicU64,
    payload_word: AtomicU64,
}

pub struct SharedCache {
    slots: Vec<SharedEntry>,
}

impl SharedCache {
    /// Registered publication function, but the tag store carries no
    /// memory-ordering justification: caught.
    pub fn publish(&self, i: usize, tag: u64) {
        // An undocumented Release store.
        self.slots[i].tag_word.store(tag, Ordering::Release);
    }

    /// Not a registered publication function: a cache entry overwritten
    /// outside the claim/publish protocol is caught even when documented.
    pub fn sneak_clear(&self, i: usize) {
        // ordering: Relaxed — irrelevant, this bypasses the protocol.
        self.slots[i].tag_word.store(0, Ordering::Relaxed);
    }
}
