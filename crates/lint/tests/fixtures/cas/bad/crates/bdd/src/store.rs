//! Fixture: shared-table atomics that break the publication protocol.

use std::sync::atomic::{AtomicU32, Ordering};

pub struct NodeStore {
    buckets: Vec<AtomicU32>,
    occupied: AtomicU32,
}

impl NodeStore {
    /// Registered publication function, but the CAS carries no
    /// memory-ordering justification: caught.
    pub fn try_mk(&self, i: usize, idx: u32) -> u32 {
        // An undocumented publication CAS.
        match self.buckets[i].compare_exchange(0, idx, Ordering::Release, Ordering::Acquire) {
            Ok(_) => idx,
            Err(winner) => winner,
        }
    }

    /// Not a registered publication function: even a documented atomic
    /// write to table state is caught.
    pub fn sneak_insert(&self, i: usize, idx: u32) {
        // ordering: Release — irrelevant, this bypasses the protocol.
        self.buckets[i].store(idx, Ordering::Release);
    }
}
