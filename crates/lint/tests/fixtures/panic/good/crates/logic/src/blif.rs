// Fixture: the same reader, panic-free — plus one annotated, provably
// unreachable arm and unwrap()s confined to the test module.
fn parse(tokens: &[&str]) -> Result<usize, ParseBlifError> {
    let first = tokens.first().ok_or_else(|| err(1, "missing token"))?;
    let n: usize = first.parse().map_err(|_| err(1, "not a number"))?;
    match n {
        0 => Err(err(1, "empty cover")),
        // bdslint: allow(panic-surface) -- match on `n != 0` above makes this arm dead
        _ if false => unreachable!(),
        _ => Ok(n),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_test_only() {
        assert_eq!(parse(&["3"]).unwrap(), 3);
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
    }
}
