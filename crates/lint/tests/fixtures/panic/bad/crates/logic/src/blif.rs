// Fixture: the three classic panic surfaces on a reader path.
fn parse(tokens: &[&str]) -> usize {
    let first = tokens[0];
    let n: usize = first.parse().unwrap();
    if n == 0 {
        panic!("empty cover");
    }
    n
}
