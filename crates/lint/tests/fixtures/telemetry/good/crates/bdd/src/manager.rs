// Fixture: same struct, every field read by the bench.
/// Running statistics of the kernel's memory system.
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Probes that returned a memoized result.
    pub hits: u64,
}
