// Fixture: both counters surface in the report.
pub fn report(st: &CacheStats) -> (u64, u64) {
    (st.lookups, st.hits)
}
