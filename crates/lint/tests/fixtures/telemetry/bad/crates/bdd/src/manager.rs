// Fixture: a telemetry struct with a counter nobody outside reads.
/// Running statistics of the kernel's memory system.
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Probes that returned a memoized result.
    pub hits: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        // In-module reads do not count: this is exactly how a counter
        // goes dead while still looking used.
        self.hits as f64 / self.lookups.max(1) as f64
    }
}
