// Fixture: the bench reads hits but never lookups.
pub fn report(st: &CacheStats) -> u64 {
    st.hits
}
