// Fixture: balanced claims pass; a deliberate ownership transfer is
// annotated with its rationale.
fn balanced(m: &mut Manager, f: Ref, g: Ref) {
    m.protect(f);
    m.protect(g);
    m.collect();
    m.release(f);
    m.release(g);
}

// bdslint: allow(protect-release) -- roots handed to the caller, released in finish()
fn handoff(m: &mut Manager, f: Ref) -> Ref {
    m.protect(f)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_leak_roots() {
        let mut m = Manager::new();
        let f = m.var(0);
        m.protect(f);
    }
}
