// Fixture: a function that takes two root claims but drops only one.
fn leaky(m: &mut Manager, f: Ref, g: Ref) {
    m.protect(f);
    m.protect(g);
    m.collect();
    m.release(f);
}
