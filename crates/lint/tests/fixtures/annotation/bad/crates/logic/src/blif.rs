// Fixture: annotation hygiene failures. An allow without a reason does
// not suppress (the panic finding stays), and both bad annotations are
// findings in their own right.
fn parse(tokens: &[&str]) -> usize {
    // bdslint: allow(panic-surface)
    let first = tokens[0];
    // bdslint: allow(made-up-rule) -- sounds plausible
    first.len()
}
