//! The self-test: `cargo test` anywhere in the workspace runs the full
//! linter over the real source tree with the production configuration
//! and fails on any finding. This is the enforcement point — the
//! `bdslint` binary is the same engine for humans and CI logs.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint::lint_root(&root).expect("workspace scan");
    if !findings.is_empty() {
        let mut msg = format!("bdslint: {} finding(s):\n", findings.len());
        for f in &findings {
            msg.push_str(&format!("  {f}\n"));
        }
        msg.push_str(
            "fix the violation or annotate it with \
             `// bdslint: allow(<rule>) -- <reason>` (see crates/lint/README.md)",
        );
        panic!("{msg}");
    }
}
