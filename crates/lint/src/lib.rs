//! `bdslint` — the workspace's own static analyzer.
//!
//! Six PRs of kernel work produced invariants that lived only in doc
//! comments and convention: GC at quiescent points, cooperative `tick()`
//! governance in every recursive kernel, balanced protect/release root
//! management, panic-free governed paths, zero `unsafe`, and telemetry
//! counters that someone actually reads. This crate turns each of those
//! into a machine-checked, deny-by-default rule that runs under plain
//! `cargo test` (the workspace self-test) and as the `bdslint` binary in
//! CI — so the upcoming concurrent-kernel refactor breaks the build, not
//! the invariants, when it violates one.
//!
//! The scanner is hand-rolled and dependency-free: a line-aware lexical
//! pass ([`lexer`]) that strips comments and string literals, a shallow
//! structural model ([`model`]) that tracks functions by brace depth, and
//! a rule engine ([`rules`]) of token searches over the cleaned view.
//! There is no `syn`, no regex crate, nothing vendored — by design: the
//! linter must never be the thing that blocks a toolchain bump.
//!
//! Suppressions are explicit and must be justified:
//!
//! ```text
//! // bdslint: allow(panic-surface) -- slot is live: mk() interned it this call
//! ```
//!
//! An `allow` without the ` -- reason` tail is itself a finding.

pub mod lexer;
pub mod model;
pub mod rules;

use model::FileModel;
use rules::{Config, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints the workspace rooted at `root` with the default (this-repo)
/// configuration. Returns findings sorted by file and line.
pub fn lint_root(root: &Path) -> io::Result<Vec<Finding>> {
    lint_root_with(root, &Config::default())
}

/// Lints the workspace rooted at `root` under an explicit configuration
/// (fixture tests use narrowed registries).
pub fn lint_root_with(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let (lintable, corpus) = load_workspace(root)?;
    Ok(rules::run(cfg, &lintable, &corpus))
}

/// Serializes findings as a JSON array (hand-rolled — the linter takes
/// no dependencies).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            json_escape(f.rule),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Collects and models the source tree: fully linted files from `src/`
/// and `crates/*/src/`, plus a read-only corpus (integration tests,
/// examples) that counts for telemetry liveness and unsafe hygiene.
/// Fixture trees under `crates/lint/tests` are never scanned.
fn load_workspace(root: &Path) -> io::Result<(Vec<FileModel>, Vec<FileModel>)> {
    let mut lintable_paths: Vec<PathBuf> = Vec::new();
    let mut corpus_paths: Vec<PathBuf> = Vec::new();

    let src = root.join("src");
    if src.is_dir() {
        walk_rs(&src, &mut lintable_paths)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in sorted_entries(&crates)? {
            let crate_src = entry.join("src");
            if crate_src.is_dir() {
                walk_rs(&crate_src, &mut lintable_paths)?;
            }
            let crate_tests = entry.join("tests");
            if crate_tests.is_dir() {
                walk_rs(&crate_tests, &mut corpus_paths)?;
            }
        }
    }
    for extra in ["tests", "examples"] {
        let dir = root.join(extra);
        if dir.is_dir() {
            walk_rs(&dir, &mut corpus_paths)?;
        }
    }
    // Fixture mini-workspaces must not leak into a real scan. Judge by
    // the path *below* the scanned root, so that a fixture tree can
    // itself be scanned as a root (its absolute path contains
    // `fixtures`, its relative paths do not).
    let keep = |p: &PathBuf| {
        !p.strip_prefix(root)
            .unwrap_or(p)
            .components()
            .any(|c| c.as_os_str() == "fixtures")
    };
    lintable_paths.retain(keep);
    corpus_paths.retain(keep);

    let model_of = |path: &PathBuf, is_test_file: bool| -> io::Result<FileModel> {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(FileModel::build(rel, lexer::strip(&text), is_test_file))
    };
    let mut lintable = Vec::new();
    for p in &lintable_paths {
        lintable.push(model_of(p, false)?);
    }
    let mut corpus = Vec::new();
    for p in &corpus_paths {
        corpus.push(model_of(p, true)?);
    }
    Ok((lintable, corpus))
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            walk_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}
