//! Structural model of one stripped source file: function spans from
//! brace-depth tracking, `#[cfg(test)]` module regions, and the parsed
//! `bdslint: allow(...)` annotations.
//!
//! Like the lexer, this is deliberately shallow — no AST, just enough
//! bracket accounting to answer "which function is line N in?" and "is
//! line N test code?". Closures and nested items are handled by the
//! same depth bookkeeping: the innermost enclosing `fn` wins.

use crate::lexer::Stripped;

/// One `fn` item: its name, where the declaration starts, and the
/// half-open body span in 0-based line indices.
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword (0-based).
    pub decl_line: usize,
    /// Line of the opening body brace.
    pub body_open_line: usize,
    /// Column just past the opening brace on `body_open_line`.
    pub body_open_col: usize,
    /// Line of the closing brace (inclusive).
    pub body_end_line: usize,
}

impl FnSpan {
    /// True when (`line`, `col`) lies inside the body, after the open brace.
    pub fn contains(&self, line: usize, col: usize) -> bool {
        if line < self.body_open_line || line > self.body_end_line {
            return false;
        }
        if line == self.body_open_line {
            col >= self.body_open_col
        } else {
            true
        }
    }
}

/// A `// bdslint: allow(rule, ...) -- reason` annotation on one line.
#[derive(Debug)]
pub struct Allow {
    pub line: usize,
    pub rules: Vec<String>,
    pub reason: bool,
    /// Set when the comment contains a `bdslint:` marker that did not
    /// parse as a well-formed allow annotation.
    pub malformed: bool,
}

/// Everything the rules need to know about one file.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub code: Vec<String>,
    pub comments: Vec<String>,
    pub fns: Vec<FnSpan>,
    /// True for lines inside a `#[cfg(test)]` module (or when the whole
    /// file is a test/bench target).
    pub is_test: Vec<bool>,
    pub allows: Vec<Allow>,
}

impl FileModel {
    pub fn build(path: String, stripped: Stripped, whole_file_is_test: bool) -> FileModel {
        let fns = find_fns(&stripped.code);
        let is_test = if whole_file_is_test {
            vec![true; stripped.code.len()]
        } else {
            test_regions(&stripped.code)
        };
        let allows = parse_allows(&stripped.comments);
        FileModel {
            path,
            code: stripped.code,
            comments: stripped.comments,
            fns,
            is_test,
            allows,
        }
    }

    /// The innermost function containing (`line`, `col`), if any.
    pub fn enclosing_fn(&self, line: usize, col: usize) -> Option<&FnSpan> {
        // Spans are emitted in open order; the last containing span is
        // the innermost.
        self.fns.iter().rfind(|f| f.contains(line, col))
    }

    /// True when `line` (or the run of pure-comment/attribute lines
    /// directly above it) carries an annotation allowing `rule`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        if line >= self.code.len() {
            return false;
        }
        self.annotation_lines(line).any(|l| {
            self.allows
                .iter()
                .any(|a| a.line == l && a.reason && a.rules.iter().any(|r| r == rule))
        })
    }

    /// True when `line` or the comment block above carries `SAFETY:`.
    pub fn has_safety_comment(&self, line: usize) -> bool {
        if line >= self.code.len() {
            return false;
        }
        self.annotation_lines(line)
            .any(|l| self.comments[l].contains("SAFETY:"))
    }

    /// `line` itself plus the contiguous run of lines above it that are
    /// comments, attributes, or blank — the span where an annotation for
    /// `line` may legally sit.
    fn annotation_lines(&self, line: usize) -> impl Iterator<Item = usize> + '_ {
        let mut first = line;
        while first > 0 {
            let above = first - 1;
            let code = self.code[above].trim();
            let carrier = code.is_empty() || code.starts_with("#[");
            if carrier {
                first = above;
            } else {
                break;
            }
        }
        first..=line
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits a cleaned line into word tokens and single-char punctuation.
/// Columns are byte offsets, matching the rule engine's `find`-based
/// searches.
fn tokens(line: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut start = 0;
    for (col, c) in line.char_indices() {
        if is_ident(c) {
            if word.is_empty() {
                start = col;
            }
            word.push(c);
        } else {
            if !word.is_empty() {
                out.push((start, std::mem::take(&mut word)));
            }
            if !c.is_whitespace() {
                out.push((col, c.to_string()));
            }
        }
    }
    if !word.is_empty() {
        out.push((start, word));
    }
    out
}

fn find_fns(code: &[String]) -> Vec<FnSpan> {
    #[derive(Clone)]
    struct Open {
        name: String,
        decl_line: usize,
        body_open_line: usize,
        body_open_col: usize,
        depth_after_open: usize,
    }
    enum Pending {
        None,
        /// Saw `fn`, waiting for the name token.
        AwaitName(usize),
        /// Saw `fn name`, waiting for the body `{` (or `;` for a
        /// bodyless trait/extern declaration).
        AwaitBody(String, usize),
    }
    let mut depth = 0usize;
    let mut stack: Vec<Open> = Vec::new();
    let mut done: Vec<FnSpan> = Vec::new();
    let mut pending = Pending::None;
    for (lineno, line) in code.iter().enumerate() {
        for (col, tok) in tokens(line) {
            match tok.as_str() {
                // A `fn` while already awaiting a body brace is a
                // `fn(...)` pointer type inside the signature — ignore it.
                "fn" => {
                    if !matches!(pending, Pending::AwaitBody(..)) {
                        pending = Pending::AwaitName(lineno);
                    }
                }
                "{" => {
                    depth += 1;
                    if let Pending::AwaitBody(name, decl_line) =
                        std::mem::replace(&mut pending, Pending::None)
                    {
                        stack.push(Open {
                            name,
                            decl_line,
                            body_open_line: lineno,
                            body_open_col: col + 1,
                            depth_after_open: depth,
                        });
                    }
                }
                "}" => {
                    if let Some(open) = stack.last() {
                        if open.depth_after_open == depth {
                            let open = stack.pop().expect("non-empty: just peeked");
                            done.push(FnSpan {
                                name: open.name,
                                decl_line: open.decl_line,
                                body_open_line: open.body_open_line,
                                body_open_col: open.body_open_col,
                                body_end_line: lineno,
                            });
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    if matches!(pending, Pending::AwaitBody(..)) {
                        pending = Pending::None; // bodyless declaration
                    }
                }
                _ => match std::mem::replace(&mut pending, Pending::None) {
                    Pending::AwaitName(decl) => {
                        if tok
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                        {
                            pending = Pending::AwaitBody(tok, decl);
                        }
                        // `fn(` pointer types and the like: not an item.
                    }
                    other => pending = other,
                },
            }
        }
    }
    // Emit in declaration order so iteration is stable.
    done.sort_by_key(|f| (f.decl_line, f.body_open_line));
    done
}

/// Marks every line inside a module that carries `#[cfg(test)]`.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code.len()];
    let mut depth = 0usize;
    // Depth at which each active test module opened.
    let mut test_open: Vec<usize> = Vec::new();
    // Armed after seeing #[cfg(test)], consumed by the next `mod`.
    let mut armed = false;
    let mut awaiting_mod_brace = false;
    for (lineno, line) in code.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            armed = true;
        }
        for (_, tok) in tokens(line) {
            match tok.as_str() {
                "mod" if armed => {
                    awaiting_mod_brace = true;
                    armed = false;
                }
                ";" => awaiting_mod_brace = false, // `mod name;` — out-of-line
                "{" => {
                    depth += 1;
                    if awaiting_mod_brace {
                        test_open.push(depth);
                        awaiting_mod_brace = false;
                    }
                }
                "}" => {
                    if test_open.last() == Some(&depth) {
                        test_open.pop();
                        is_test[lineno] = true; // the closing line itself
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        if !test_open.is_empty() {
            is_test[lineno] = true;
        }
    }
    is_test
}

/// Parses `bdslint: allow(rule, ...) -- reason` annotations out of the
/// comment view.
///
/// Only a comment that *starts* with the `bdslint:` marker is an
/// annotation; prose that merely mentions the marker (docs, examples) is
/// ignored. Ignoring a mis-written annotation is safe in the deny
/// direction: the violation it meant to suppress simply stays visible.
fn parse_allows(comments: &[String]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (lineno, comment) in comments.iter().enumerate() {
        let trimmed = comment.trim_start();
        let Some(rest) = trimmed.strip_prefix("bdslint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let malformed = |line| Allow {
            line,
            rules: Vec::new(),
            reason: false,
            malformed: true,
        };
        let Some(rest) = rest.strip_prefix("allow") else {
            out.push(malformed(lineno));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            out.push(malformed(lineno));
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(malformed(lineno));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.push(malformed(lineno));
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let reason = tail
            .strip_prefix("--")
            .map(str::trim)
            .is_some_and(|r| !r.is_empty());
        out.push(Allow {
            line: lineno,
            rules,
            reason,
            malformed: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn model(src: &str) -> FileModel {
        FileModel::build("x.rs".into(), strip(src), false)
    }

    #[test]
    fn finds_nested_functions() {
        let m =
            model("impl Foo {\n    fn outer(&self) {\n        fn inner() {\n        }\n    }\n}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let inner = m.enclosing_fn(3, 0).expect("line 3 is inside inner");
        assert_eq!(inner.name, "inner");
    }

    #[test]
    fn bodyless_trait_methods_are_skipped() {
        let m = model("trait T {\n    fn decl(&self);\n    fn with_body(&self) {\n    }\n}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_body"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let m = model("fn real(cb: fn(u32) -> u32) {\n    cb(1);\n}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let m = model("fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}\n");
        assert!(!m.is_test[0]);
        assert!(m.is_test[3]);
        assert!(!m.is_test[5]);
    }

    #[test]
    fn allow_annotations_parse() {
        let m = model(
            "a(); // bdslint: allow(panic-surface) -- reason here\nb(); // bdslint: allow(gc-in-kernel)\nc(); // bdslint: allownothing\n",
        );
        assert_eq!(m.allows.len(), 3);
        assert!(m.allows[0].reason && m.allows[0].rules == ["panic-surface"]);
        assert!(!m.allows[1].reason);
        assert!(m.allows[2].malformed);
        assert!(m.allowed("panic-surface", 0));
        assert!(
            !m.allowed("gc-in-kernel", 1),
            "allow without reason must not suppress"
        );
    }

    #[test]
    fn annotation_above_through_attributes() {
        let m = model(
            "// bdslint: allow(protect-release) -- ownership transfers\n#[inline]\nfn f() {}\n",
        );
        assert!(m.allowed("protect-release", 2));
        assert!(!m.allowed("protect-release", 5));
    }

    #[test]
    fn safety_comment_above_unsafe() {
        let m =
            model("// SAFETY: always in bounds\nlet x = unsafe { *p };\nlet y = unsafe { *q };\n");
        assert!(m.has_safety_comment(1));
        assert!(!m.has_safety_comment(2));
    }
}
