//! A line-aware lexical pass over Rust source.
//!
//! `bdslint`'s rules are token searches, and token searches lie when a
//! banned token sits inside a doc comment, a string literal, or a test
//! fixture embedded as text. This pass splits a source file into two
//! parallel line-indexed views:
//!
//! * **code** — the source with every comment and every string/char
//!   literal body blanked out (delimiters of string literals are kept so
//!   the code still reads as `foo("")`), and
//! * **comments** — the text of the comments alone, which is where the
//!   `// bdslint: allow(...)` annotations and `// SAFETY:` justifications
//!   live.
//!
//! The lexer understands line comments, nested block comments, string
//! escapes, raw strings (`r"…"`, `r#"…"#`, byte variants), char literals,
//! and the char-literal-versus-lifetime ambiguity (`'a'` vs `'a`). It is
//! deliberately *not* a full Rust lexer: it never tokenizes, it only
//! decides "code or not" per character, which is all the rules need.

/// The two line-parallel views of one source file.
pub struct Stripped {
    /// Source lines with comments removed and literal bodies blanked.
    pub code: Vec<String>,
    /// Comment text per line (joined with a space when a line carries
    /// more than one comment), without the `//`/`/*` markers.
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth (Rust block comments nest).
    BlockComment(u32),
    Str,
    /// Raw string with this many `#` marks in its delimiter.
    RawStr(usize),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `text` into the code view and the comment view.
pub fn strip(text: &str) -> Stripped {
    let chars: Vec<char> = text.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    if !comment.is_empty() {
                        comment.push(' ');
                    }
                    i += 2;
                    // Skip the doc-comment third slash / inner-doc bang.
                    while matches!(chars.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    if !comment.is_empty() {
                        comment.push(' ');
                    }
                    i += 2;
                    continue;
                }
                // Raw (byte) strings: r"…", r#"…"#, br"…", br#"…"#.
                // Only when the introducer is not the tail of an identifier.
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if (c == 'r' || c == 'b') && !prev_ident {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && j == i + 1 && chars.get(j) != Some(&'r') {
                        // b"…" / b'…' are handled by the plain cases below.
                    } else if c == 'r' || j > i + 1 {
                        let mut hashes = 0;
                        while chars.get(j + hashes) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(j + hashes) == Some(&'"') {
                            code.push('"');
                            state = State::RawStr(hashes);
                            i = j + hashes + 1;
                            continue;
                        }
                    }
                }
                // Byte string b"…" forwards to the Str state.
                if c == 'b' && !prev_ident && next == Some('"') {
                    code.push('"');
                    state = State::Str;
                    i += 2;
                    continue;
                }
                // Byte char b'…'.
                if c == 'b' && !prev_ident && next == Some('\'') {
                    state = State::CharLit;
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: '\…' and 'x' (a closing
                    // quote two ahead) are literals; anything else is a
                    // lifetime and stays in the code view.
                    if next == Some('\\') || (next.is_some() && chars.get(i + 2) == Some(&'\'')) {
                        state = State::CharLit;
                        i += 1;
                        continue;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char — unless it is a line break
                    // (the `\`-continuation), which must still be seen by
                    // the newline handler to keep line numbers aligned.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut k = 0;
                    while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    Stripped {
        code: code_lines,
        comments: comment_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_move_to_comment_view() {
        let s = strip("let x = 1; // trailing note\n// full line\nlet y = 2;");
        assert_eq!(s.code[0].trim_end(), "let x = 1;");
        assert_eq!(s.comments[0].trim(), "trailing note");
        assert_eq!(s.code[1].trim(), "");
        assert_eq!(s.comments[1].trim(), "full line");
        assert_eq!(s.code[2], "let y = 2;");
    }

    #[test]
    fn doc_comment_markers_are_dropped() {
        let s = strip("/// calls unwrap() in prose\nfn f() {}");
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains("unwrap() in prose"));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let s = strip("let m = \"panic!(true) .unwrap()\";");
        assert_eq!(s.code[0], "let m = \"\";");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = strip("let m = r#\"x \" .unwrap() \"#; let k = 1;");
        assert_eq!(s.code[0], "let m = \"\"; let k = 1;");
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("a /* one /* two */ still comment */ b");
        assert_eq!(s.code[0].split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
        assert!(s.comments[0].contains("still comment"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let s = strip("fn f<'a>(x: &'a str) { let c = '['; let d = '\\''; }");
        assert!(s.code[0].contains("<'a>"));
        assert!(s.code[0].contains("&'a str"));
        assert!(!s.code[0].contains('['));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = strip(r#"let m = "a\"b[0]"; m.len();"#);
        assert_eq!(s.code[0], "let m = \"\"; m.len();");
    }

    #[test]
    fn multiline_string_spans_lines() {
        let s = strip("let m = \"one\ntwo .unwrap()\nthree\"; done();");
        assert!(!s.code[1].contains("unwrap"));
        assert!(s.code[2].contains("done();"));
    }
}
