//! `bdslint` — run the workspace invariant checks from the command line.
//!
//! ```text
//! bdslint [--json] [ROOT]
//! ```
//!
//! `ROOT` defaults to the nearest enclosing directory that looks like the
//! workspace root (contains both `Cargo.toml` and `crates/`), so the tool
//! works from any subdirectory. Exit codes: 0 clean, 1 findings, 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bdslint [--json] [ROOT]");
    ExitCode::from(2)
}

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: bdslint [--json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            a if a.starts_with('-') => {
                eprintln!("bdslint: unknown flag {a}");
                return usage();
            }
            a => {
                if root_arg.replace(PathBuf::from(a)).is_some() {
                    eprintln!("bdslint: more than one ROOT given");
                    return usage();
                }
            }
        }
    }
    let start = root_arg.unwrap_or_else(|| PathBuf::from("."));
    let Some(root) = find_root(start.clone()) else {
        eprintln!(
            "bdslint: no workspace root (Cargo.toml + crates/) at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };
    match lint::lint_root(&root) {
        Ok(findings) => {
            if json {
                print!("{}", lint::findings_to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                if findings.is_empty() {
                    eprintln!("bdslint: clean ({} rules)", lint::rules::RULES.len());
                } else {
                    eprintln!("bdslint: {} finding(s)", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bdslint: {e}");
            ExitCode::from(2)
        }
    }
}
