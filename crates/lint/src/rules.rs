//! The eight workspace invariants `bdslint` enforces, plus the annotation
//! hygiene diagnostics.
//!
//! Every rule is deny-by-default: a violation is suppressed only by a
//! `// bdslint: allow(<rule>) -- <justification>` annotation on the
//! offending line (or the comment/attribute block directly above it, or
//! the declaration of the offending function for function-scoped rules).
//! An `allow` without a justification is itself a finding.
//!
//! See `crates/lint/README.md` for the catalogue of invariants and the
//! PRs that introduced them.

use crate::model::FileModel;

/// Rule identifiers, exactly as they appear in findings and in
/// `allow(...)` annotations.
pub const RULES: [&str; 9] = [
    KERNEL_TICK,
    GC_IN_KERNEL,
    PROTECT_RELEASE,
    PANIC_SURFACE,
    UNSAFE_SAFETY,
    TELEMETRY_LIVENESS,
    COMPLEMENT_CANONICAL,
    CAS_PUBLICATION,
    ANNOTATION,
];

pub const KERNEL_TICK: &str = "kernel-tick";
pub const COMPLEMENT_CANONICAL: &str = "complement-canonical";
pub const GC_IN_KERNEL: &str = "gc-in-kernel";
pub const PROTECT_RELEASE: &str = "protect-release";
pub const PANIC_SURFACE: &str = "panic-surface";
pub const UNSAFE_SAFETY: &str = "unsafe-safety";
pub const TELEMETRY_LIVENESS: &str = "telemetry-liveness";
pub const CAS_PUBLICATION: &str = "cas-publication";
/// Meta-rule: malformed/unjustified/unknown `bdslint:` annotations.
pub const ANNOTATION: &str = "annotation";

/// One diagnostic, printed as `file:line: rule: message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    /// 1-based line number (0 for file- or config-level findings).
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What to scan and which repo-specific registries to enforce. The
/// [`Config::default`] values describe *this* workspace; fixture tests
/// build narrower configs, and future subsystems extend the registries
/// here.
pub struct Config {
    /// Directory whose recursive kernels are governance-checked.
    pub kernel_dir: &'static str,
    /// Recursive kernel functions (inside `kernel_dir`) that must call
    /// `self.tick()?` before their first `mk` or self-recursion — the
    /// PR 6 cooperative-governance contract. Grow this list when adding
    /// a kernel.
    pub kernel_fns: &'static [&'static str],
    /// Kernel files in which no GC/reorder entry point may ever be
    /// called: collection runs at quiescent points only (PR 2).
    pub gc_free_files: &'static [&'static str],
    /// Method names that trigger the quiescent-point rule.
    pub gc_methods: &'static [&'static str],
    /// Files whose non-test code must be panic-free (governed kernel
    /// paths and the BLIF reader).
    pub panic_free_files: &'static [&'static str],
    /// Telemetry structs: every public field must be read outside the
    /// defining file, or it is a dead counter (the PR 4 bug class).
    /// Entries are `(struct name, defining file)`.
    pub telemetry_structs: &'static [(&'static str, &'static str)],
    /// Directory governed by the complement-canonicity rule: raw `Ref`
    /// construction (`Ref::new(` / `Ref::from_raw(`) is banned outside the
    /// registered constructor functions, because hand-built refs can put a
    /// complement bit on a 1-edge and break the canonical form (PR 8).
    /// Empty disables the rule (fixture roots for other rules).
    pub ref_ctor_dir: &'static str,
    /// The edge-encoding module itself — the one file that owns the bit
    /// layout and is exempt from the raw-construction ban.
    pub ref_encoding_file: &'static str,
    /// Functions (inside `ref_ctor_dir`) allowed to construct a `Ref`
    /// from raw parts: the hash-consing constructor, the computed-cache
    /// decoder, and the node→function view. Grow this list deliberately.
    pub ref_ctor_fns: &'static [&'static str],
    /// Directory governed by the CAS-publication rule: atomic writes to
    /// the shared unique-table/arena state are confined to the
    /// registered publication functions, and every such operation must
    /// justify its memory ordering (PR 9). Empty disables the rule.
    pub cas_dir: &'static str,
    /// The only functions (inside `cas_dir`) allowed to mutate shared
    /// table state through atomics: the publication protocol itself.
    /// Everything else mutates through `&mut` at quiescent points.
    pub cas_publication_fns: &'static [&'static str],
    /// Field names that constitute shared table state for the
    /// CAS-publication rule (arena cells, buckets, interior refcounts,
    /// and the allocation/occupancy counters).
    pub cas_state_fields: &'static [&'static str],
}

impl Default for Config {
    fn default() -> Self {
        Config {
            kernel_dir: "crates/bdd/src",
            kernel_fns: &[
                "ite_rec",
                "and_rec",
                "xor_rec",
                "cofactor_rec",
                "restrict_rec",
                "constrain_rec",
                "replace_rec",
            ],
            gc_free_files: ["crates/bdd/src/ops.rs", "crates/bdd/src/cofactor.rs"].as_slice(),
            gc_methods: &[
                "collect",
                "maybe_collect",
                "sift",
                "sift_vars",
                "sift_to_fixpoint",
                "maybe_sift",
            ],
            panic_free_files: &[
                "crates/bdd/src/ops.rs",
                "crates/bdd/src/cofactor.rs",
                "crates/logic/src/blif.rs",
            ],
            telemetry_structs: &[
                ("CacheStats", "crates/bdd/src/manager.rs"),
                ("SiftReport", "crates/bdd/src/manager.rs"),
                ("FlowReport", "crates/decomp/src/engine.rs"),
            ],
            ref_ctor_dir: "crates/bdd/src",
            ref_encoding_file: "crates/bdd/src/reference.rs",
            ref_ctor_fns: &["try_mk", "node", "lookup", "function_of"],
            cas_dir: "crates/bdd/src",
            cas_publication_fns: &["try_mk", "claim_slot", "abandon_slot", "publish"],
            cas_state_fields: &[
                "cells",
                "buckets",
                "int_refs",
                "free_top",
                "next",
                "occupied",
                "abandoned",
                "allocs_since_gc",
                // The shared computed cache's two-word entries: claimed,
                // payload-published and tag-released only inside
                // `SharedCache::publish` (quiescent clear/scrub paths go
                // through `get_mut`).
                "tag_word",
                "payload_word",
            ],
        }
    }
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Columns of `.name(` method-call tokens in a cleaned line.
fn method_calls(line: &str, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let pat = format!(".{name}(");
    while let Some(pos) = line[from..].find(&pat) {
        out.push(from + pos);
        from += pos + pat.len();
    }
    out
}

/// True for bytes that can sit inside an identifier (multi-byte UTF-8
/// is treated as identifier-like, which errs toward fewer findings).
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Byte columns where `word` appears with identifier boundaries.
fn word_occurrences(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if pre_ok && post_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

/// Runs every rule over the modeled files. `lintable` files get the full
/// rule set; the rest of `corpus` (tests, examples) only count as readers
/// for telemetry liveness and are checked for unsafe hygiene.
pub fn run(cfg: &Config, lintable: &[FileModel], corpus: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in lintable {
        kernel_tick_file(cfg, file, &mut findings);
        gc_in_kernel(cfg, file, &mut findings);
        protect_release(file, &mut findings);
        panic_surface(cfg, file, &mut findings);
        unsafe_safety(file, &mut findings);
        complement_canonical(cfg, file, &mut findings);
        cas_publication(cfg, file, &mut findings);
        annotation_hygiene(file, &mut findings);
    }
    for file in corpus {
        unsafe_safety(file, &mut findings);
        annotation_hygiene(file, &mut findings);
    }
    kernel_registry_coverage(cfg, lintable, &mut findings);
    cas_registry_coverage(cfg, lintable, &mut findings);
    telemetry_liveness(cfg, lintable, corpus, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// Rule 1 (`kernel-tick`): every registered recursive kernel calls
/// `self.tick()?` before its first `mk` or self-recursion, so the
/// resource budget governs the whole recursion.
fn kernel_tick_file(cfg: &Config, file: &FileModel, findings: &mut Vec<Finding>) {
    if !file.path.starts_with(cfg.kernel_dir) {
        return;
    }
    for span in &file.fns {
        if !cfg.kernel_fns.contains(&span.name.as_str()) {
            continue;
        }
        // First `.tick(` and first governed action (`.mk(` or a
        // self-recursive call) inside the body, in (line, col) order.
        let mut first_tick: Option<(usize, usize)> = None;
        let mut first_action: Option<(usize, usize, &'static str)> = None;
        for lineno in span.body_open_line..=span.body_end_line {
            let line = &file.code[lineno];
            for col in method_calls(line, "tick") {
                if span.contains(lineno, col) && first_tick.is_none() {
                    first_tick = Some((lineno, col));
                }
            }
            for col in method_calls(line, "mk") {
                if span.contains(lineno, col) && first_action.is_none() {
                    first_action = Some((lineno, col, "mk"));
                }
            }
            for col in method_calls(line, &span.name) {
                if span.contains(lineno, col) && first_action.is_none() {
                    first_action = Some((lineno, col, "recursion"));
                }
            }
        }
        match (first_tick, first_action) {
            (None, _) if !file.allowed(KERNEL_TICK, span.decl_line) => {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: span.decl_line + 1,
                    rule: KERNEL_TICK,
                    message: format!(
                        "recursive kernel `{}` never calls `self.tick()?` — \
                             the resource budget (PR 6) cannot govern it",
                        span.name
                    ),
                });
            }
            (Some(tick), Some((al, ac, what)))
                if (al, ac) < (tick.0, tick.1) && !file.allowed(KERNEL_TICK, al) =>
            {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: al + 1,
                    rule: KERNEL_TICK,
                    message: format!(
                        "kernel `{}` reaches {} before its `self.tick()?` — \
                             budget checks must precede the first mk/recursion",
                        span.name, what
                    ),
                });
            }
            _ => {}
        }
    }
}

/// Registry drift: a registered kernel that no longer exists under the
/// kernel dir means a rename dodged the governance rule — break loudly.
fn kernel_registry_coverage(cfg: &Config, lintable: &[FileModel], findings: &mut Vec<Finding>) {
    let kernel_files: Vec<&FileModel> = lintable
        .iter()
        .filter(|f| f.path.starts_with(cfg.kernel_dir))
        .collect();
    if kernel_files.is_empty() {
        return; // nothing under the kernel dir (fixture roots)
    }
    for name in cfg.kernel_fns {
        let found = kernel_files
            .iter()
            .any(|f| f.fns.iter().any(|s| s.name == *name));
        if !found {
            findings.push(Finding {
                file: cfg.kernel_dir.to_string(),
                line: 0,
                rule: KERNEL_TICK,
                message: format!(
                    "registered kernel `{name}` not found under {} — \
                     update the bdslint kernel registry alongside the rename",
                    cfg.kernel_dir
                ),
            });
        }
    }
}

/// Rule 2 (`gc-in-kernel`): collection and reordering run at quiescent
/// points only; the kernel recursion files must never invoke them (the
/// sweep would reclaim unprotected recursion intermediates).
fn gc_in_kernel(cfg: &Config, file: &FileModel, findings: &mut Vec<Finding>) {
    if !cfg.gc_free_files.contains(&file.path.as_str()) {
        return;
    }
    for (lineno, line) in file.code.iter().enumerate() {
        if file.is_test[lineno] {
            continue;
        }
        for method in cfg.gc_methods {
            if !method_calls(line, method).is_empty() && !file.allowed(GC_IN_KERNEL, lineno) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno + 1,
                    rule: GC_IN_KERNEL,
                    message: format!(
                        "`.{method}(` inside a kernel file — GC/reordering is \
                         quiescent-point-only (PR 2): it would sweep the \
                         unprotected recursion intermediates"
                    ),
                });
            }
        }
    }
}

/// Rule 3 (`protect-release`): `.protect(` and `.release(` calls must
/// balance within a function, unless the function is annotated as
/// transferring root ownership to/from its caller.
fn protect_release(file: &FileModel, findings: &mut Vec<Finding>) {
    for span in &file.fns {
        if file.is_test[span.decl_line] {
            continue;
        }
        let mut protects = 0usize;
        let mut releases = 0usize;
        for lineno in span.body_open_line..=span.body_end_line {
            // Count only calls belonging to this body, not to a nested fn.
            let line = &file.code[lineno];
            for col in method_calls(line, "protect") {
                if file
                    .enclosing_fn(lineno, col)
                    .is_some_and(|f| std::ptr::eq(f, span))
                {
                    protects += 1;
                }
            }
            for col in method_calls(line, "release") {
                if file
                    .enclosing_fn(lineno, col)
                    .is_some_and(|f| std::ptr::eq(f, span))
                {
                    releases += 1;
                }
            }
        }
        if protects != releases && !file.allowed(PROTECT_RELEASE, span.decl_line) {
            findings.push(Finding {
                file: file.path.clone(),
                line: span.decl_line + 1,
                rule: PROTECT_RELEASE,
                message: format!(
                    "`{}` has {protects} protect call(s) but {releases} release \
                     call(s) — balance them, or annotate the root-ownership \
                     transfer with its rationale",
                    span.name
                ),
            });
        }
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "unimplemented", "todo"];
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Rule 4 (`panic-surface`): governed kernel paths and the BLIF reader
/// must not panic — no unwrap/expect, no panicking macros, no `[...]`
/// indexing. Errors flow through `Result`; provably-safe spots carry an
/// annotation with the proof sketch.
fn panic_surface(cfg: &Config, file: &FileModel, findings: &mut Vec<Finding>) {
    if !cfg.panic_free_files.contains(&file.path.as_str()) {
        return;
    }
    let push = |lineno: usize, message: String, findings: &mut Vec<Finding>| {
        if !file.allowed(PANIC_SURFACE, lineno) {
            findings.push(Finding {
                file: file.path.clone(),
                line: lineno + 1,
                rule: PANIC_SURFACE,
                message,
            });
        }
    };
    for (lineno, line) in file.code.iter().enumerate() {
        if file.is_test[lineno] {
            continue;
        }
        for m in PANIC_METHODS {
            if !method_calls(line, m).is_empty() {
                push(
                    lineno,
                    format!("`.{m}()` on a governed path — return a proper error instead"),
                    findings,
                );
            }
        }
        for m in PANIC_MACROS {
            for col in word_occurrences(line, m) {
                // Macro invocation: the word followed by `!`.
                if line[col + m.len()..].starts_with('!') {
                    push(
                        lineno,
                        format!("`{m}!` on a governed path — return a proper error instead"),
                        findings,
                    );
                }
            }
        }
        // `expr[...]` indexing: `[` immediately preceded by an identifier
        // character or a closing bracket. Slice patterns, array types and
        // literals (`[T; N]`, `&[...]`, `= [`) are not preceded that way.
        let bytes = line.as_bytes();
        for (col, &c) in bytes.iter().enumerate() {
            if c == b'[' && col > 0 {
                let prev = bytes[col - 1];
                if is_ident_byte(prev) || prev == b')' || prev == b']' {
                    push(
                        lineno,
                        "`[...]` indexing on a governed path — it panics out of \
                         bounds; use `.get(...)` or restructure"
                            .to_string(),
                        findings,
                    );
                }
            }
        }
    }
}

/// Rule 5 (`unsafe-safety`): every `unsafe` occurrence carries a
/// `// SAFETY:` justification. The workspace is currently unsafe-free;
/// this locks that state in ahead of the lock-free unique table.
fn unsafe_safety(file: &FileModel, findings: &mut Vec<Finding>) {
    for (lineno, line) in file.code.iter().enumerate() {
        if !word_occurrences(line, "unsafe").is_empty()
            && !file.has_safety_comment(lineno)
            && !file.allowed(UNSAFE_SAFETY, lineno)
        {
            findings.push(Finding {
                file: file.path.clone(),
                line: lineno + 1,
                rule: UNSAFE_SAFETY,
                message: "`unsafe` without a `// SAFETY:` comment on or above the line".to_string(),
            });
        }
    }
}

/// Rule 7 (`complement-canonical`): inside the kernel crate, `Ref`s are
/// minted only by the registered constructors. A raw `Ref::new(` /
/// `Ref::from_raw(` anywhere else can set the complement bit on a
/// 1-edge and silently break the canonical form (`f` and `¬f` stop
/// sharing a node; hash-consing canonicity is gone). The encoding module
/// itself owns the bit layout and is exempt.
fn complement_canonical(cfg: &Config, file: &FileModel, findings: &mut Vec<Finding>) {
    if cfg.ref_ctor_dir.is_empty()
        || !file.path.starts_with(cfg.ref_ctor_dir)
        || file.path == cfg.ref_encoding_file
    {
        return;
    }
    for (lineno, line) in file.code.iter().enumerate() {
        if file.is_test[lineno] {
            continue;
        }
        for ctor in ["Ref::new(", "Ref::from_raw("] {
            let bytes = line.as_bytes();
            let mut from = 0;
            while let Some(pos) = line[from..].find(ctor) {
                let col = from + pos;
                from = col + ctor.len();
                // `SomeRef::new(` is a different type, not a signed edge.
                if col > 0 && is_ident_byte(bytes[col - 1]) {
                    continue;
                }
                let minted_by_ctor = file
                    .enclosing_fn(lineno, col)
                    .is_some_and(|f| cfg.ref_ctor_fns.contains(&f.name.as_str()));
                if !minted_by_ctor && !file.allowed(COMPLEMENT_CANONICAL, lineno) {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: lineno + 1,
                        rule: COMPLEMENT_CANONICAL,
                        message: format!(
                            "raw `{}...)` outside the registered constructors \
                             ({}) — hand-built refs can complement a 1-edge and \
                             break canonical form; go through `mk`",
                            ctor,
                            cfg.ref_ctor_fns.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// Atomic method calls that mutate their receiver — the write half of
/// the publication protocol. Loads are deliberately exempt: reads are
/// safe anywhere, and the Acquire pairing is documented at the store.
const CAS_WRITE_OPS: [&str; 8] = [
    "store",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
];

/// Rule 8 (`cas-publication`): the shared unique table is mutated
/// through atomics only inside the registered publication functions —
/// the slot-claim/publish protocol of PR 9. A raw atomic store to a
/// bucket or arena cell anywhere else bypasses the Release/Acquire
/// discipline that makes concurrent hash-consing sound (a reader could
/// observe a published index before the node's field writes). Inside the
/// registered functions, every atomic write must be justified by an
/// `// ordering:` comment so the memory-ordering argument survives
/// refactors. Quiescent `&mut` mutators are exempt by construction:
/// they go through `get_mut()`, which is not an atomic call.
fn cas_publication(cfg: &Config, file: &FileModel, findings: &mut Vec<Finding>) {
    if cfg.cas_dir.is_empty() || !file.path.starts_with(cfg.cas_dir) {
        return;
    }
    for (lineno, line) in file.code.iter().enumerate() {
        if file.is_test[lineno] {
            continue;
        }
        let Some(col) = CAS_WRITE_OPS
            .iter()
            .flat_map(|op| method_calls(line, op))
            .min()
        else {
            continue;
        };
        // The receiver may sit on the line above (rustfmt splits long
        // statements), so the state-field name is sought on both.
        let state_field = cfg.cas_state_fields.iter().find(|fld| {
            !word_occurrences(line, fld).is_empty()
                || (lineno > 0 && !word_occurrences(&file.code[lineno - 1], fld).is_empty())
        });
        let Some(field) = state_field else {
            continue;
        };
        let Some(span) = file.enclosing_fn(lineno, col) else {
            continue;
        };
        if !cfg.cas_publication_fns.contains(&span.name.as_str()) {
            if !file.allowed(CAS_PUBLICATION, lineno) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: lineno + 1,
                    rule: CAS_PUBLICATION,
                    message: format!(
                        "atomic write to table state `{}` outside the registered \
                         publication functions ({}) — shared-table mutation must \
                         go through the slot-claim/publish protocol (quiescent \
                         `&mut` paths use `get_mut()`)",
                        field,
                        cfg.cas_publication_fns.join(", ")
                    ),
                });
            }
            continue;
        }
        let documented =
            (span.body_open_line..=lineno).any(|l| file.comments[l].contains("ordering:"));
        if !documented && !file.allowed(CAS_PUBLICATION, lineno) {
            findings.push(Finding {
                file: file.path.clone(),
                line: lineno + 1,
                rule: CAS_PUBLICATION,
                message: format!(
                    "atomic write to table state `{field}` in `{}` has no \
                     `// ordering:` justification above it — document why the \
                     chosen memory ordering is sufficient",
                    span.name
                ),
            });
        }
    }
}

/// Registry drift: a registered publication function that no longer
/// exists under the CAS dir means a rename dodged the publication rule —
/// break loudly, exactly like the kernel registry.
fn cas_registry_coverage(cfg: &Config, lintable: &[FileModel], findings: &mut Vec<Finding>) {
    if cfg.cas_dir.is_empty() {
        return;
    }
    let cas_files: Vec<&FileModel> = lintable
        .iter()
        .filter(|f| f.path.starts_with(cfg.cas_dir))
        .collect();
    if cas_files.is_empty() {
        return; // nothing under the CAS dir (fixture roots)
    }
    for name in cfg.cas_publication_fns {
        let found = cas_files
            .iter()
            .any(|f| f.fns.iter().any(|s| s.name == *name));
        if !found {
            findings.push(Finding {
                file: cfg.cas_dir.to_string(),
                line: 0,
                rule: CAS_PUBLICATION,
                message: format!(
                    "registered publication function `{name}` not found under {} — \
                     update the bdslint cas registry alongside the rename",
                    cfg.cas_dir
                ),
            });
        }
    }
}

/// Rule 6 (`telemetry-liveness`): every public field of the registered
/// telemetry structs is read (`.field` access) in at least one file other
/// than the defining one — a counter nobody reads is drift waiting to
/// happen (the PR 4 aggregate-statistics bug class).
fn telemetry_liveness(
    cfg: &Config,
    lintable: &[FileModel],
    corpus: &[FileModel],
    findings: &mut Vec<Finding>,
) {
    for (struct_name, def_file) in cfg.telemetry_structs {
        let Some(def) = lintable.iter().find(|f| f.path == *def_file) else {
            continue; // struct's home not in this scan root (fixture roots)
        };
        for (field, field_line) in struct_fields(def, struct_name) {
            let read_somewhere = lintable
                .iter()
                .chain(corpus.iter())
                .filter(|f| f.path != *def_file)
                .any(|f| f.code.iter().any(|line| method_field_access(line, &field)));
            if !read_somewhere && !def.allowed(TELEMETRY_LIVENESS, field_line) {
                findings.push(Finding {
                    file: def.path.clone(),
                    line: field_line + 1,
                    rule: TELEMETRY_LIVENESS,
                    message: format!(
                        "`{struct_name}.{field}` is never read outside {def_file} — \
                         dead telemetry; surface it (bench/report) or drop it"
                    ),
                });
            }
        }
    }
}

/// `.field` access with an identifier boundary after it (also matches a
/// same-named method call, which is close enough for liveness).
fn method_field_access(line: &str, field: &str) -> bool {
    let pat = format!(".{field}");
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(&pat) {
        let end = from + pos + pat.len();
        if end >= bytes.len() || !is_ident_byte(bytes[end]) {
            return true;
        }
        from = end;
    }
    false
}

/// Public fields of `struct name { ... }` in a stripped file, with their
/// 0-based definition lines.
fn struct_fields(file: &FileModel, name: &str) -> Vec<(String, usize)> {
    let mut fields = Vec::new();
    let mut in_struct = false;
    let mut depth = 0i32;
    for (lineno, line) in file.code.iter().enumerate() {
        if !in_struct {
            let has_decl = !word_occurrences(line, "struct").is_empty()
                && !word_occurrences(line, name).is_empty();
            if has_decl {
                in_struct = true;
                depth = 0;
                if !line.contains('{') {
                    continue; // brace arrives on a later line
                }
            } else {
                continue;
            }
        }
        for c in line.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
            }
        }
        // Field lines look like `pub name: Type,` at depth 1.
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                let field: String = rest[..colon].trim().to_string();
                if !field.is_empty() && field.chars().all(is_ident) && !trimmed.contains("fn ") {
                    fields.push((field, lineno));
                }
            }
        }
        if depth <= 0 && in_struct && line.contains('}') {
            break;
        }
    }
    fields
}

/// Annotation hygiene: `bdslint:` markers must parse, name real rules,
/// and carry a justification.
fn annotation_hygiene(file: &FileModel, findings: &mut Vec<Finding>) {
    for allow in &file.allows {
        if allow.malformed {
            findings.push(Finding {
                file: file.path.clone(),
                line: allow.line + 1,
                rule: ANNOTATION,
                message: "malformed `bdslint:` annotation — expected \
                          `bdslint: allow(<rule>) -- <justification>`"
                    .to_string(),
            });
            continue;
        }
        for rule in &allow.rules {
            if !RULES.contains(&rule.as_str()) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: allow.line + 1,
                    rule: ANNOTATION,
                    message: format!(
                        "annotation names unknown rule `{rule}` (known: {})",
                        RULES.join(", ")
                    ),
                });
            }
        }
        if !allow.reason {
            findings.push(Finding {
                file: file.path.clone(),
                line: allow.line + 1,
                rule: ANNOTATION,
                message: "allow annotation without a justification — append \
                          ` -- <why this is sound>`"
                    .to_string(),
            });
        }
    }
}
