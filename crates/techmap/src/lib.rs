//! Technology mapping substrate: the paper's six-cell CMOS 22 nm library,
//! a direct-assignment mapper that preserves MAJ/XOR/XNOR cells, and
//! static timing/area reporting (the metrics of Table II).
//!
//! # Example
//!
//! ```
//! use logic::{Network, GateKind};
//! use techmap::{map_network, report, Library};
//!
//! let mut net = Network::new("fa");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let c = net.add_input("cin");
//! let s = net.add_gate(GateKind::Xor, vec![a, b, c]);
//! let co = net.add_gate(GateKind::Maj, vec![a, b, c]);
//! net.set_output("s", s);
//! net.set_output("co", co);
//!
//! let mapped = map_network(&net);
//! let r = report(&mapped, &Library::cmos22());
//! assert_eq!(r.gate_count, 3); // XOR2 + XOR2 + MAJ3
//! ```

mod library;
mod mapper;
mod timing;

pub use library::{Cell, CellKind, Library};
pub use mapper::{map_network, MappedNetwork};
pub use timing::{report, MappedReport};
