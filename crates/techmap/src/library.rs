//! The standard-cell library of the paper's experiments: MAJ-3, XOR-2,
//! XNOR-2, NAND-2, NOR-2 and INV, characterized in the spirit of a CMOS
//! 22 nm node (PTM-derived relative figures; see DESIGN.md §3 for the
//! calibration rationale).

use std::fmt;

/// The six cell types of the paper's library.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XOR.
    Xor2,
    /// Two-input XNOR.
    Xnor2,
    /// Three-input majority.
    Maj3,
}

impl CellKind {
    /// All cell kinds, for iteration and histograms.
    pub const ALL: [CellKind; 6] = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Maj3,
    ];

    /// Library name of the cell.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Maj3 => "MAJ3",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Electrical characterization of one cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Layout area in µm².
    pub area: f64,
    /// Intrinsic pin-to-pin delay in ns at unit load.
    pub delay: f64,
}

/// A characterized cell library plus its wire-load model.
#[derive(Clone, Debug)]
pub struct Library {
    cells: [Cell; 6],
    /// Extra delay (ns) added per additional fanout of a driving cell.
    pub load_delay_per_fanout: f64,
}

impl Library {
    /// The CMOS 22 nm library used throughout the experiments.
    ///
    /// Areas follow transistor counts at a 22 nm standard-cell density
    /// (INV 2T, NAND/NOR 4T, XOR/XNOR 10T transmission-gate style, MAJ 12T)
    /// and delays follow typical relative drive figures at that node.
    pub fn cmos22() -> Library {
        Library {
            cells: [
                Cell {
                    area: 0.065,
                    delay: 0.008,
                }, // INV
                Cell {
                    area: 0.130,
                    delay: 0.012,
                }, // NAND2
                Cell {
                    area: 0.130,
                    delay: 0.014,
                }, // NOR2
                Cell {
                    area: 0.325,
                    delay: 0.024,
                }, // XOR2
                Cell {
                    area: 0.325,
                    delay: 0.024,
                }, // XNOR2
                Cell {
                    area: 0.355,
                    delay: 0.028,
                }, // MAJ3
            ],
            load_delay_per_fanout: 0.0015,
        }
    }

    /// Characterization of a cell kind.
    pub fn cell(&self, kind: CellKind) -> Cell {
        self.cells[match kind {
            CellKind::Inv => 0,
            CellKind::Nand2 => 1,
            CellKind::Nor2 => 2,
            CellKind::Xor2 => 3,
            CellKind::Xnor2 => 4,
            CellKind::Maj3 => 5,
        }]
    }

    /// Replaces the characterization of one cell (for ablation studies).
    pub fn with_cell(mut self, kind: CellKind, cell: Cell) -> Library {
        let idx = match kind {
            CellKind::Inv => 0,
            CellKind::Nand2 => 1,
            CellKind::Nor2 => 2,
            CellKind::Xor2 => 3,
            CellKind::Xnor2 => 4,
            CellKind::Maj3 => 5,
        };
        self.cells[idx] = cell;
        self
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::cmos22()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_costs_are_sane() {
        let lib = Library::cmos22();
        let inv = lib.cell(CellKind::Inv);
        let nand = lib.cell(CellKind::Nand2);
        let xor = lib.cell(CellKind::Xor2);
        let maj = lib.cell(CellKind::Maj3);
        assert!(inv.area < nand.area);
        assert!(nand.area < xor.area);
        assert!(xor.area < maj.area);
        assert!(inv.delay < nand.delay && nand.delay < xor.delay);
        // One MAJ3 must be cheaper than its AOI equivalent
        // (2·NAND2 + 1·NOR2 + ... ≈ 3+ gates) — that's the whole premise.
        assert!(maj.area < 3.0 * nand.area);
    }

    #[test]
    fn with_cell_overrides() {
        let lib = Library::cmos22().with_cell(
            CellKind::Maj3,
            Cell {
                area: 9.9,
                delay: 1.0,
            },
        );
        assert_eq!(lib.cell(CellKind::Maj3).area, 9.9);
        assert_ne!(lib.cell(CellKind::Inv).area, 9.9);
    }

    #[test]
    fn all_cells_have_names() {
        for kind in CellKind::ALL {
            assert!(!kind.name().is_empty());
        }
    }
}
