//! Static timing and area reporting for mapped netlists — produces the
//! Area (µm²) / Gate Count / Delay (ns) triplets of Table II.

use crate::library::{CellKind, Library};
use crate::mapper::MappedNetwork;
use logic::SignalId;
use std::collections::HashMap;
use std::fmt;

/// Area, gate count and critical-path delay of a mapped netlist.
#[derive(Clone, Debug, Default)]
pub struct MappedReport {
    /// Total cell area in µm².
    pub area: f64,
    /// Number of mapped cells.
    pub gate_count: usize,
    /// Critical input-to-output delay in ns.
    pub delay: f64,
    /// Cells per kind.
    pub histogram: HashMap<CellKind, usize>,
}

impl fmt::Display for MappedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.2} µm², {} gates, delay {:.3} ns",
            self.area, self.gate_count, self.delay
        )
    }
}

/// Computes the area/gate-count/delay report of a mapped netlist under a
/// library. Delay uses a linear wire-load model: the cell's intrinsic delay
/// plus a per-extra-fanout term.
pub fn report(mapped: &MappedNetwork, lib: &Library) -> MappedReport {
    let net = &mapped.network;
    let fanouts = net.fanout_counts();
    let mut arrival: Vec<f64> = vec![0.0; net.len()];
    let mut area = 0.0;
    let mut gate_count = 0usize;
    let mut histogram: HashMap<CellKind, usize> = HashMap::new();
    let mut worst: f64 = 0.0;
    for id in net.signals() {
        let node = net.node(id);
        let input_arrival = node
            .fanins
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        let t = match MappedNetwork::cell_of(net, id) {
            Some(kind) => {
                let cell = lib.cell(kind);
                area += cell.area;
                gate_count += 1;
                *histogram.entry(kind).or_insert(0) += 1;
                let load = lib.load_delay_per_fanout * fanouts[id.index()].saturating_sub(1) as f64;
                input_arrival + cell.delay + load
            }
            None => input_arrival,
        };
        arrival[id.index()] = t;
        worst = worst.max(t);
    }
    // Outputs define the measured paths.
    let delay = net
        .outputs()
        .iter()
        .map(|(_, s): &(String, SignalId)| arrival[s.index()])
        .fold(0.0, f64::max);
    MappedReport {
        area,
        gate_count,
        delay,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_network;
    use logic::{GateKind, Network};

    #[test]
    fn report_counts_inverter_chain() {
        let mut net = Network::new("chain");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let mut cur = a;
        for i in 0..4 {
            let other = if i % 2 == 0 { b } else { a };
            let x = net.add_gate(GateKind::Xor, vec![cur, other]);
            cur = net.add_gate(GateKind::Maj, vec![x, a, b]);
        }
        net.set_output("y", cur);
        let mapped = map_network(&net);
        let lib = Library::cmos22();
        let r = report(&mapped, &lib);
        assert!(r.gate_count > 0);
        assert!(r.area > 0.0);
        assert!(r.delay > 0.0);
        assert_eq!(
            r.gate_count,
            r.histogram.values().sum::<usize>(),
            "histogram consistent with count"
        );
    }

    #[test]
    fn delay_grows_with_depth() {
        let lib = Library::cmos22();
        let build = |depth: usize| {
            let mut net = Network::new("d");
            let a = net.add_input("a");
            let b = net.add_input("b");
            let mut cur = a;
            for _ in 0..depth {
                cur = net.add_gate(GateKind::Xor, vec![cur, b]);
            }
            net.set_output("y", cur);
            // Prevent x ^ b ^ b collapse by alternating with AND.
            net
        };
        // XOR chains with even length collapse; use mapped depth directly.
        let shallow = report(&map_network(&build(1)), &lib);
        let deep = {
            let mut net = Network::new("deep");
            let a = net.add_input("a");
            let b = net.add_input("b");
            let x1 = net.add_gate(GateKind::Xor, vec![a, b]);
            let a1 = net.add_gate(GateKind::And, vec![x1, a]);
            let x2 = net.add_gate(GateKind::Xor, vec![a1, b]);
            let a2 = net.add_gate(GateKind::And, vec![x2, x1]);
            net.set_output("y", a2);
            report(&map_network(&net), &lib)
        };
        assert!(deep.delay > shallow.delay);
    }

    #[test]
    fn fanout_load_increases_delay() {
        let mut lib_heavy = Library::cmos22();
        lib_heavy.load_delay_per_fanout = 0.1;
        let mut net = Network::new("fan");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        // x drives three consumers.
        let c1 = net.add_gate(GateKind::Maj, vec![x, a, b]);
        let c2 = net.add_gate(GateKind::Xnor, vec![x, a]);
        let c3 = net.add_gate(GateKind::Xor, vec![x, b]);
        net.set_output("o1", c1);
        net.set_output("o2", c2);
        net.set_output("o3", c3);
        let mapped = map_network(&net);
        let light = report(&mapped, &Library::cmos22());
        let heavy = report(&mapped, &lib_heavy);
        assert!(heavy.delay > light.delay, "load model must matter");
    }

    #[test]
    fn empty_logic_reports_zero() {
        let mut net = Network::new("wire");
        let a = net.add_input("a");
        net.set_output("y", a);
        let mapped = map_network(&net);
        let r = report(&mapped, &Library::cmos22());
        assert_eq!(r.gate_count, 0);
        assert_eq!(r.area, 0.0);
        assert_eq!(r.delay, 0.0);
    }
}
