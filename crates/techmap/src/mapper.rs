//! Technology mapping onto the six-cell library, following the paper's
//! two-step scheme (§V-B.1): MAJ, XOR and XNOR nodes are assigned directly
//! to their cells (so the functions highlighted by decomposition are not
//! hidden again), and the AND/OR/MUX remainder is covered with
//! NAND/NOR/INV structures with inverter minimization.

use crate::library::CellKind;
use logic::{strash_key, BuildFxHasher, GateKind, Network, SignalId, TruthTable};
use std::collections::HashMap;

/// Structural-hash table over emitted cells, keyed by the allocation-free
/// fixed-arity arrays built by [`logic::strash_key`].
type Strash = HashMap<(u8, [SignalId; 3]), SignalId, BuildFxHasher>;

/// A technology-mapped netlist: a [`Network`] whose logic nodes are
/// restricted to the six library cells, plus the kind annotation per node.
#[derive(Clone, Debug)]
pub struct MappedNetwork {
    /// The mapped netlist (gates: INV/NAND/NOR/XOR/XNOR/MAJ only).
    pub network: Network,
}

impl MappedNetwork {
    /// Cell kind of a node, or `None` for inputs/constants/buffers.
    pub fn cell_of(net: &Network, id: SignalId) -> Option<CellKind> {
        match net.node(id).kind {
            GateKind::Inv => Some(CellKind::Inv),
            GateKind::Nand => Some(CellKind::Nand2),
            GateKind::Nor => Some(CellKind::Nor2),
            GateKind::Xor => Some(CellKind::Xor2),
            GateKind::Xnor => Some(CellKind::Xnor2),
            GateKind::Maj => Some(CellKind::Maj3),
            _ => None,
        }
    }

    /// Histogram of mapped cells.
    pub fn histogram(&self) -> HashMap<CellKind, usize> {
        let mut h = HashMap::new();
        for id in self.network.signals() {
            if let Some(kind) = Self::cell_of(&self.network, id) {
                *h.entry(kind).or_insert(0) += 1;
            }
        }
        h
    }

    /// Number of mapped cells.
    pub fn gate_count(&self) -> usize {
        self.network
            .signals()
            .filter(|&id| Self::cell_of(&self.network, id).is_some())
            .count()
    }
}

/// Maps an optimized logic network onto the library cells.
///
/// Accepts any [`Network`]; n-ary gates are binarized into balanced trees,
/// MUX and LUT nodes are expanded into AND/OR structures first, then
/// AND → NAND+INV and OR → NOR+INV with a double-inverter cleanup pass.
pub fn map_network(net: &Network) -> MappedNetwork {
    // The ABC mapper the paper uses restructures associative chains while
    // covering; do the same before the cell assignment.
    let net = &logic::balance_network(net);
    let mut out = Network::new(format!("{}_mapped", net.name()));
    let mut map: HashMap<SignalId, SignalId, BuildFxHasher> = HashMap::default();
    let mut strash = Strash::default();

    for &pi in net.inputs() {
        let new = out.add_input(net.signal_name(pi));
        map.insert(pi, new);
    }
    for id in net.signals() {
        if map.contains_key(&id) {
            continue;
        }
        let node = net.node(id);
        let fanins: Vec<SignalId> = node.fanins.iter().map(|f| map[f]).collect();
        let mapped = emit_kind(&mut out, &node.kind, &fanins, &mut strash);
        map.insert(id, mapped);
    }
    for (name, s) in net.outputs() {
        out.set_output(name.clone(), map[s]);
    }
    MappedNetwork {
        network: out.cleaned(),
    }
}

/// Structural-hashing emit: all library cells are commutative, so fanins
/// are sorted into the key; a hit allocates nothing.
fn hashed(
    net: &mut Network,
    strash: &mut Strash,
    code: u8,
    kind: GateKind,
    fanins: &[SignalId],
) -> SignalId {
    let mut sorted = [logic::STRASH_PAD; 3];
    sorted[..fanins.len()].copy_from_slice(fanins);
    sorted[..fanins.len()].sort_unstable();
    let key = strash_key(code, &sorted[..fanins.len()])
        .expect("library cells have at most 3 fanins and a nonzero code");
    if let Some(&s) = strash.get(&key) {
        return s;
    }
    let s = net.add_gate(kind, sorted[..fanins.len()].to_vec());
    strash.insert(key, s);
    s
}

fn inv(net: &mut Network, strash: &mut Strash, x: SignalId) -> SignalId {
    if let GateKind::Inv = net.node(x).kind {
        return net.node(x).fanins[0];
    }
    hashed(net, strash, 1, GateKind::Inv, &[x])
}

fn and2(net: &mut Network, strash: &mut Strash, a: SignalId, b: SignalId) -> SignalId {
    let n = hashed(net, strash, 2, GateKind::Nand, &[a, b]);
    inv(net, strash, n)
}

fn or2(net: &mut Network, strash: &mut Strash, a: SignalId, b: SignalId) -> SignalId {
    let n = hashed(net, strash, 3, GateKind::Nor, &[a, b]);
    inv(net, strash, n)
}

/// Reduces an n-ary associative operation with a balanced tree.
fn tree(
    net: &mut Network,
    strash: &mut Strash,
    mut args: Vec<SignalId>,
    op: &dyn Fn(&mut Network, &mut Strash, SignalId, SignalId) -> SignalId,
) -> SignalId {
    assert!(!args.is_empty());
    while args.len() > 1 {
        let mut next = Vec::with_capacity(args.len().div_ceil(2));
        for pair in args.chunks(2) {
            if pair.len() == 2 {
                next.push(op(net, strash, pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        args = next;
    }
    args[0]
}

fn emit_kind(
    net: &mut Network,
    kind: &GateKind,
    fanins: &[SignalId],
    strash: &mut Strash,
) -> SignalId {
    match kind {
        GateKind::Input => unreachable!("inputs pre-mapped"),
        GateKind::Const(b) => net.add_const(*b),
        GateKind::Buf => fanins[0],
        GateKind::Inv => inv(net, strash, fanins[0]),
        GateKind::And => tree(net, strash, fanins.to_vec(), &and2),
        GateKind::Nand => {
            if fanins.len() == 2 {
                hashed(net, strash, 2, GateKind::Nand, fanins)
            } else {
                let a = tree(net, strash, fanins.to_vec(), &and2);
                inv(net, strash, a)
            }
        }
        GateKind::Or => tree(net, strash, fanins.to_vec(), &or2),
        GateKind::Nor => {
            if fanins.len() == 2 {
                hashed(net, strash, 3, GateKind::Nor, fanins)
            } else {
                let o = tree(net, strash, fanins.to_vec(), &or2);
                inv(net, strash, o)
            }
        }
        GateKind::Xor => tree(net, strash, fanins.to_vec(), &|net, st, a, b| {
            hashed(net, st, 4, GateKind::Xor, &[a, b])
        }),
        GateKind::Xnor => {
            // Parity complement: XOR-tree with one XNOR at the root.
            if fanins.len() == 1 {
                return inv(net, strash, fanins[0]);
            }
            let head = fanins[..fanins.len() - 1].to_vec();
            let left = tree(net, strash, head, &|net, st, a, b| {
                hashed(net, st, 4, GateKind::Xor, &[a, b])
            });
            hashed(
                net,
                strash,
                5,
                GateKind::Xnor,
                &[left, fanins[fanins.len() - 1]],
            )
        }
        GateKind::Maj => hashed(net, strash, 6, GateKind::Maj, fanins),
        GateKind::Mux => {
            // sel·t + sel'·e as NAND-NAND: NAND(NAND(s,t), NAND(s',e)).
            let (s, t, e) = (fanins[0], fanins[1], fanins[2]);
            let ns = inv(net, strash, s);
            let n1 = hashed(net, strash, 2, GateKind::Nand, &[s, t]);
            let n2 = hashed(net, strash, 2, GateKind::Nand, &[ns, e]);
            hashed(net, strash, 2, GateKind::Nand, &[n1, n2])
        }
        GateKind::Lut(table) => emit_lut(net, table, fanins, strash),
    }
}

/// Shannon-expands a LUT into MUX structures over its inputs.
fn emit_lut(
    net: &mut Network,
    table: &TruthTable,
    fanins: &[SignalId],
    strash: &mut Strash,
) -> SignalId {
    fn expand(
        net: &mut Network,
        table: &TruthTable,
        fanins: &[SignalId],
        strash: &mut Strash,
        fixed: usize,
        row: usize,
        consts: &mut HashMap<bool, SignalId>,
    ) -> (Option<bool>, Option<SignalId>) {
        if fixed == fanins.len() {
            return (Some(table.value(row)), None);
        }
        let i = fanins.len() - 1 - fixed;
        let (hc, hs) = expand(net, table, fanins, strash, fixed + 1, row | 1 << i, consts);
        let (lc, ls) = expand(net, table, fanins, strash, fixed + 1, row, consts);
        let sel = fanins[i];
        // Constant-aware MUX construction.
        match (hc, lc) {
            (Some(h), Some(l)) if h == l => (Some(h), None),
            (Some(true), Some(false)) => (None, Some(sel)),
            (Some(false), Some(true)) => (None, Some(inv(net, strash, sel))),
            _ => {
                let hi = hs.unwrap_or_else(|| {
                    *consts
                        .entry(hc.unwrap())
                        .or_insert_with(|| net.add_const(hc.unwrap()))
                });
                let lo = ls.unwrap_or_else(|| {
                    *consts
                        .entry(lc.unwrap())
                        .or_insert_with(|| net.add_const(lc.unwrap()))
                });
                let s = match (hc, lc) {
                    (Some(true), None) => {
                        // sel + lo
                        or2(net, strash, sel, lo)
                    }
                    (Some(false), None) => {
                        // sel'·lo
                        let ns = inv(net, strash, sel);
                        and2(net, strash, ns, lo)
                    }
                    (None, Some(true)) => {
                        // sel' + hi
                        let ns = inv(net, strash, sel);
                        or2(net, strash, ns, hi)
                    }
                    (None, Some(false)) => and2(net, strash, sel, hi),
                    _ => {
                        let ns = inv(net, strash, sel);
                        let n1 = hashed(net, strash, 2, GateKind::Nand, &[sel, hi]);
                        let n2 = hashed(net, strash, 2, GateKind::Nand, &[ns, lo]);
                        hashed(net, strash, 2, GateKind::Nand, &[n1, n2])
                    }
                };
                (None, Some(s))
            }
        }
    }
    let mut consts = HashMap::new();
    let (c, s) = expand(net, table, fanins, strash, 0, 0, &mut consts);
    match (c, s) {
        (Some(v), _) => net.add_const(v),
        (None, Some(s)) => s,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::equiv_sim;

    fn mixed_network() -> Network {
        let mut net = Network::new("mix");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let m = net.add_gate(GateKind::Maj, vec![x, c, d]);
        let o = net.add_gate(GateKind::Or, vec![a, c, d]);
        let y = net.add_gate(GateKind::And, vec![m, o]);
        net.set_output("y", y);
        net
    }

    #[test]
    fn mapping_preserves_function() {
        let net = mixed_network();
        let mapped = map_network(&net);
        assert_eq!(equiv_sim(&net, &mapped.network, 16, 3), Ok(()));
    }

    #[test]
    fn mapped_gates_are_library_cells_only() {
        let net = mixed_network();
        let mapped = map_network(&net);
        for id in mapped.network.signals() {
            let kind = &mapped.network.node(id).kind;
            assert!(
                matches!(
                    kind,
                    GateKind::Input
                        | GateKind::Const(_)
                        | GateKind::Inv
                        | GateKind::Nand
                        | GateKind::Nor
                        | GateKind::Xor
                        | GateKind::Xnor
                        | GateKind::Maj
                ),
                "non-library gate {kind:?} survived mapping"
            );
            if matches!(
                kind,
                GateKind::Nand | GateKind::Nor | GateKind::Xor | GateKind::Xnor
            ) {
                assert_eq!(
                    mapped.network.node(id).fanins.len(),
                    2,
                    "two-input cells only"
                );
            }
        }
    }

    #[test]
    fn maj_and_xor_are_preserved_directly() {
        let net = mixed_network();
        let mapped = map_network(&net);
        let h = mapped.histogram();
        assert_eq!(h.get(&CellKind::Maj3), Some(&1), "MAJ preserved");
        assert!(
            h.get(&CellKind::Xor2).copied().unwrap_or(0) >= 1,
            "XOR preserved"
        );
    }

    #[test]
    fn mux_maps_to_nand_nand() {
        let mut net = Network::new("mux");
        let s = net.add_input("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_gate(GateKind::Mux, vec![s, a, b]);
        net.set_output("y", y);
        let mapped = map_network(&net);
        assert_eq!(equiv_sim(&net, &mapped.network, 8, 1), Ok(()));
        let h = mapped.histogram();
        assert_eq!(h.get(&CellKind::Nand2), Some(&3));
        assert_eq!(h.get(&CellKind::Inv), Some(&1));
    }

    #[test]
    fn lut_expansion_is_equivalent() {
        let mut net = Network::new("lut");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        // A random-ish 3-input function.
        let t = TruthTable::from_fn(3, |r| {
            [true, false, false, true, true, false, true, false][r]
        });
        let l = net.add_gate(GateKind::Lut(t), vec![a, b, c]);
        net.set_output("y", l);
        let mapped = map_network(&net);
        assert_eq!(equiv_sim(&net, &mapped.network, 8, 5), Ok(()));
    }

    #[test]
    fn wide_gates_binarize() {
        let mut net = Network::new("wide");
        let ins: Vec<SignalId> = (0..7).map(|i| net.add_input(format!("i{i}"))).collect();
        let a = net.add_gate(GateKind::And, ins.clone());
        let x = net.add_gate(GateKind::Xor, ins.clone());
        let y = net.add_gate(GateKind::Or, vec![a, x]);
        net.set_output("y", y);
        let mapped = map_network(&net);
        assert_eq!(equiv_sim(&net, &mapped.network, 16, 2), Ok(()));
    }

    #[test]
    fn double_inverters_are_cleaned() {
        let mut net = Network::new("ii");
        let a = net.add_input("a");
        let b = net.add_input("b");
        // and(a,b) followed by nand-style use: the INV-INV pair between
        // consecutive ANDs must disappear.
        let t1 = net.add_gate(GateKind::And, vec![a, b]);
        let t2 = net.add_gate(GateKind::And, vec![t1, a]);
        net.set_output("y", t2);
        let mapped = map_network(&net);
        assert_eq!(equiv_sim(&net, &mapped.network, 8, 4), Ok(()));
        let _h = mapped.histogram();
        // NAND(a,b) -> INV -> NAND(.., a) -> INV: 2 NAND + 2 INV before
        // cleaning; the output INV stays, the internal pair is kept only if
        // structurally needed. Ensure we are not worse than the naive form.
        assert!(mapped.gate_count() <= 4);
    }
}
