//! Property-based tests of the majority decomposition (Algorithm 1):
//! every theorem of §III is checked on random functions.

use bdd::{Manager, Ref};
use bdsmaj::{
    balance_pass, construct_majority, find_m_dominators, maj_decompose, CofactorOp, MajConfig,
    MajDecomposer,
};
use decomp::MajorityHook;
use proptest::prelude::*;

const NVARS: u32 = 7;

#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Maj(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(6, 96, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Maj(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn to_bdd(e: &Expr, m: &mut Manager) -> Ref {
    match e {
        Expr::Var(i) => m.var(*i),
        Expr::Not(x) => !to_bdd(x, m),
        Expr::And(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.xor(x, y)
        }
        Expr::Maj(a, b, c) => {
            let (x, y, z) = (to_bdd(a, m), to_bdd(b, m), to_bdd(c, m));
            m.maj(x, y, z)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Theorem 3.2 + 3.3: the construction is valid for *any* candidate
    /// Fa, not only m-dominators — here Fa is an arbitrary second random
    /// function.
    #[test]
    fn construction_is_valid_for_arbitrary_candidates(
        fe in arb_expr(),
        ae in arb_expr(),
        use_constrain in any::<bool>(),
    ) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        let fa = to_bdd(&ae, &mut m);
        let op = if use_constrain { CofactorOp::Constrain } else { CofactorOp::Restrict };
        let cand = construct_majority(&mut m, f, fa, op);
        let back = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
        prop_assert_eq!(back, f, "Maj(Fa,Fb,Fc) must equal F");
    }

    /// Theorem 3.4: balancing passes preserve validity.
    #[test]
    fn balancing_preserves_validity(fe in arb_expr(), ae in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        let fa = to_bdd(&ae, &mut m);
        let mut cand = construct_majority(&mut m, f, fa, CofactorOp::Restrict);
        let config = MajConfig::default();
        for _ in 0..3 {
            balance_pass(&mut m, &mut cand, &config);
            let back = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
            prop_assert_eq!(back, f, "balancing broke the decomposition");
        }
    }

    /// Balancing never increases the total size.
    #[test]
    fn balancing_is_monotone(fe in arb_expr(), ae in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        let fa = to_bdd(&ae, &mut m);
        let mut cand = construct_majority(&mut m, f, fa, CofactorOp::Restrict);
        let before = cand.total();
        let config = MajConfig::default();
        balance_pass(&mut m, &mut cand, &config);
        prop_assert!(cand.total() <= before, "balance accepted a regression");
    }

    /// The full algorithm, when it returns, returns a valid triple.
    #[test]
    fn maj_decompose_returns_valid_triples(fe in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        if let Some(cand) = maj_decompose(&mut m, f, &MajConfig::default()) {
            let back = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
            prop_assert_eq!(back, f);
        }
    }

    /// The engine-facing hook only accepts decompositions meeting the
    /// global sizing test (guaranteeing recursion progress).
    #[test]
    fn hook_results_respect_global_bound(fe in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        let config = MajConfig::default();
        let mut hook = MajDecomposer::new(config);
        if let Some([fa, fb, fc]) = hook.try_majority(&mut m, f) {
            let fsize = m.size(f) as f64;
            for part in [fa, fb, fc] {
                prop_assert!(
                    config.global_k * m.size(part) as f64 <= fsize,
                    "hook accepted an oversized component"
                );
            }
            let back = m.maj(fa, fb, fc);
            prop_assert_eq!(back, f);
        }
    }

    /// m-dominators never include the root and never include simple
    /// dominators (condition (i)).
    #[test]
    fn m_dominators_exclude_simple_dominators(fe in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&fe, &mut m);
        prop_assume!(!f.is_const());
        let doms = find_m_dominators(&mut m, f, &MajConfig::default());
        for d in doms {
            prop_assert_ne!(d, f.node(), "root is a trivial m-dominator");
            prop_assert!(
                decomp::classify_dominator(&mut m, f, d).is_none(),
                "condition (i) violated: node is a simple dominator"
            );
        }
    }
}
