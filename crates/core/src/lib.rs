//! **BDS-MAJ**: BDD-based logic synthesis exploiting majority logic
//! decomposition — a reproduction of Amarù, Gaillardon, De Micheli,
//! DAC 2013.
//!
//! This crate implements the paper's contribution: the first BDD-based
//! majority logic decomposition method ([`maj_decompose`], Algorithm 1 of
//! the paper), layered on a BDS-style decomposition engine to form the
//! complete BDS-MAJ flow ([`bds_maj`]). The BDS-PGA baseline ([`bds_pga`])
//! is the identical engine with the majority hook disabled.
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//! use bdsmaj::{maj_decompose, MajConfig};
//!
//! // F = ab + bc + ac: the paper's running example.
//! let mut m = Manager::new();
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let f = m.maj(a, b, c);
//! let cand = maj_decompose(&mut m, f, &MajConfig::default()).unwrap();
//! // Algorithm 1 recovers the literal triple: |Fa| = |Fb| = |Fc| = 1.
//! assert_eq!(cand.sizes, [1, 1, 1]);
//! ```

mod flow;
mod maj;

pub use decomp::{ConeStatus, FlowReport};
pub use flow::{bds_maj, bds_pga, BdsMajOptions, FlowResult};
pub use maj::{
    balance_pass, construct_majority, find_m_dominators, maj_decompose, CofactorOp, MajCandidate,
    MajConfig, MajDecomposer,
};
