//! The complete BDS-MAJ logic optimization system (§IV of the paper):
//! network partitioning → BDD decomposition with the majority hook →
//! factoring trees with sharing. Also provides the BDS-PGA baseline (the
//! same engine with the majority hook disabled).
//!
//! Both flows run in bounded BDD memory: the engine underneath declares
//! supernode functions as garbage-collection roots, releases them as
//! their gates are emitted, and lets the manager reclaim dead
//! intermediates between supernodes (see `bdd::Manager::collect`), so
//! long multi-benchmark runs do not accumulate every intermediate node.

use crate::maj::{MajConfig, MajDecomposer};
use decomp::{decompose_network, DecomposeResult, EngineOptions, NoMajority};
use logic::Network;

/// Options of the full BDS-MAJ flow.
#[derive(Clone, Debug, Default)]
pub struct BdsMajOptions {
    /// Partitioning and dominator-search bounds of the underlying engine.
    pub engine: EngineOptions,
    /// Majority decomposition tuning (paper defaults).
    pub maj: MajConfig,
}

/// Statistics reported by [`bds_maj`] beyond the decomposed network.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Decomposition outcome (network + runtime).
    pub result: DecomposeResult,
    /// How many functions the majority hook decomposed.
    pub maj_accepted: usize,
    /// How many functions the majority hook evaluated and declined.
    pub maj_rejected: usize,
}

impl FlowResult {
    /// Shorthand for the decomposed network.
    pub fn network(&self) -> &Network {
        &self.result.network
    }

    /// Per-cone budget outcomes of the run (all `Ok` when unbudgeted).
    pub fn report(&self) -> &decomp::FlowReport {
        &self.result.report
    }
}

/// Runs the BDS-MAJ decomposition flow on a network.
///
/// # Example
///
/// ```
/// use logic::{Network, GateKind, equiv_sim};
/// use bdsmaj::{bds_maj, BdsMajOptions};
///
/// let mut net = Network::new("maj");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let c = net.add_input("c");
/// let ab = net.add_gate(GateKind::And, vec![a, b]);
/// let bc = net.add_gate(GateKind::And, vec![b, c]);
/// let ac = net.add_gate(GateKind::And, vec![a, c]);
/// let o1 = net.add_gate(GateKind::Or, vec![ab, bc]);
/// let f = net.add_gate(GateKind::Or, vec![o1, ac]);
/// net.set_output("f", f);
///
/// let out = bds_maj(&net, &BdsMajOptions::default());
/// assert!(equiv_sim(&net, out.network(), 8, 1).is_ok());
/// assert_eq!(out.network().gate_counts().maj, 1); // a single MAJ-3 gate
/// ```
pub fn bds_maj(net: &Network, options: &BdsMajOptions) -> FlowResult {
    let mut hook = MajDecomposer::new(options.maj);
    let result = decompose_network(net, &options.engine, &mut hook);
    FlowResult {
        result,
        maj_accepted: hook.accepted,
        maj_rejected: hook.rejected,
    }
}

/// Runs the BDS-PGA baseline: the identical engine and options with the
/// majority hook disabled, which is exactly the comparison of Table I.
pub fn bds_pga(net: &Network, options: &EngineOptions) -> DecomposeResult {
    decompose_network(net, options, &mut NoMajority)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{equiv_sim, GateKind, Network, SignalId};

    fn majority_rich_network() -> Network {
        // A 4-bit ripple-carry adder written in AND/OR/XOR form (no MAJ
        // gates in the input): the carry chain is majority logic in
        // disguise, the exact motivation of the paper.
        let mut net = Network::new("add4_aoi");
        let a: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry: Option<SignalId> = None;
        for i in 0..4 {
            match carry {
                None => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i]]);
                    let c = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    net.set_output(format!("s{i}"), s);
                    carry = Some(c);
                }
                Some(cin) => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i], cin]);
                    // carry = ab + bc + ac spelled out with AND/OR.
                    let ab = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    let bc = net.add_gate(GateKind::And, vec![b[i], cin]);
                    let ac = net.add_gate(GateKind::And, vec![a[i], cin]);
                    let t = net.add_gate(GateKind::Or, vec![ab, bc]);
                    let c = net.add_gate(GateKind::Or, vec![t, ac]);
                    net.set_output(format!("s{i}"), s);
                    carry = Some(c);
                }
            }
        }
        net.set_output("cout", carry.unwrap());
        net
    }

    #[test]
    fn bds_maj_preserves_function() {
        let net = majority_rich_network();
        let out = bds_maj(&net, &BdsMajOptions::default());
        assert_eq!(equiv_sim(&net, out.network(), 32, 9), Ok(()));
    }

    #[test]
    fn bds_maj_extracts_majority_gates() {
        let net = majority_rich_network();
        let out = bds_maj(&net, &BdsMajOptions::default());
        let counts = out.network().gate_counts();
        assert!(
            counts.maj >= 2,
            "the carry chain must surface MAJ gates, got {counts:?}"
        );
        // Distinct functions are decomposed once and shared afterwards, so
        // the accepted counter is a lower bound on emitted MAJ gates.
        assert!(out.maj_accepted >= 1);
    }

    #[test]
    fn bds_maj_beats_bds_pga_on_majority_logic() {
        let net = majority_rich_network();
        let with = bds_maj(&net, &BdsMajOptions::default());
        let without = bds_pga(&net, &EngineOptions::default());
        assert_eq!(equiv_sim(&net, &without.network, 32, 9), Ok(()));
        let n_with = with.network().gate_counts().decomposition_total();
        let n_without = without.network.gate_counts().decomposition_total();
        assert!(
            n_with <= n_without,
            "BDS-MAJ ({n_with}) must not be larger than BDS-PGA ({n_without})"
        );
    }

    #[test]
    fn flows_agree_on_pure_control_logic() {
        // AND/OR logic offers no m-dominators: both flows should produce
        // equivalent, MAJ-free results.
        let mut net = Network::new("ctrl");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let t1 = net.add_gate(GateKind::And, vec![a, b]);
        let t2 = net.add_gate(GateKind::And, vec![c, d]);
        let t3 = net.add_gate(GateKind::Or, vec![t1, t2]);
        let t4 = net.add_gate(GateKind::And, vec![t3, a]);
        net.set_output("y", t4);
        let with = bds_maj(&net, &BdsMajOptions::default());
        assert_eq!(equiv_sim(&net, with.network(), 16, 2), Ok(()));
    }
}
