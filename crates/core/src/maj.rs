//! The majority logic decomposition method of BDS-MAJ (§III of the paper,
//! Algorithm 1).
//!
//! Given a function `F`, the method expresses it as `Maj(Fa, Fb, Fc)`:
//!
//! * **(α)** candidate functions `Fa` are found through *m-dominators* —
//!   highly connected internal BDD nodes that are not already simple
//!   0-/1-/x-dominators;
//! * **(β)** an initial decomposition is constructed from Theorem 3.2 with
//!   the generalized-cofactor seeds of Theorem 3.3:
//!   `Fb = ITE(Fa ⊕ F, F, F⇓Fa)` and `Fc = ITE(Fa ⊕ F, F, F⇓Fa')`;
//! * **(γ)** the triple is improved by cyclic balancing (Theorem 3.4):
//!   every couple `(X, Y)` is rewritten through a balanced XOR
//!   decomposition of `X ⊕ Y`;
//! * **(ω)** the best triple over all candidates is selected with the
//!   paper's size metric and sizing factor `k`.

use bdd::{Manager, NodeId, Ref};
use decomp::{classify_dominator, xor_decompose_balanced, MajorityHook, SearchOptions};
use std::collections::HashMap;

/// Which generalized-cofactor operator seeds the construction (the paper
/// cites both `restrict` [17] and `constrain` [18]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CofactorOp {
    /// Coudert–Madre `restrict` (default: smaller seeds in practice).
    #[default]
    Restrict,
    /// Coudert–Madre `constrain`.
    Constrain,
}

/// Tuning parameters of the majority decomposition (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct MajConfig {
    /// Sizing factor for the local selection among candidates (§III-E).
    pub local_k: f64,
    /// Sizing factor for the global accept-or-reject decision (§IV-B).
    pub global_k: f64,
    /// Maximum cyclic-optimization iterations (the paper uses 5).
    pub max_iterations: usize,
    /// Maximum number of m-dominator candidates examined per function
    /// ("adjusted on the fly specifying tighter selection constraints").
    pub max_candidates: usize,
    /// Functions with fewer BDD nodes than this are not worth a MAJ split.
    pub min_size: usize,
    /// Generalized-cofactor operator for the (β) seeds.
    pub cofactor: CofactorOp,
    /// Bounds for the balanced XOR decomposition used in (γ).
    pub search: SearchOptions,
}

impl Default for MajConfig {
    fn default() -> Self {
        MajConfig {
            local_k: 1.5,
            global_k: 1.6,
            max_iterations: 5,
            max_candidates: 8,
            min_size: 3,
            cofactor: CofactorOp::Restrict,
            search: SearchOptions::default(),
        }
    }
}

/// A majority decomposition triple with its size accounting.
#[derive(Clone, Copy, Debug)]
pub struct MajCandidate {
    /// The three functions with `f = Maj(fa, fb, fc)`.
    pub triple: [Ref; 3],
    /// BDD sizes of the three functions.
    pub sizes: [usize; 3],
}

impl MajCandidate {
    fn of(m: &Manager, triple: [Ref; 3]) -> MajCandidate {
        MajCandidate {
            triple,
            sizes: [m.size(triple[0]), m.size(triple[1]), m.size(triple[2])],
        }
    }

    /// Total size `|Fa| + |Fb| + |Fc|`.
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// The paper's local superiority test: candidate 1 beats candidate 2
    /// when its total size is smaller, or when every component is smaller
    /// by the sizing factor `k`.
    pub fn beats(&self, other: &MajCandidate, k: f64) -> bool {
        if self.total() < other.total() {
            return true;
        }
        self.sizes
            .iter()
            .zip(&other.sizes)
            .all(|(&a, &b)| k * a as f64 <= b as f64)
    }
}

/// Searches the DAG of `f` for non-trivial m-dominators (§III-B).
///
/// A non-trivial m-dominator is an internal node that (i) is not a simple
/// 0-/1-/x-dominator, and (ii) is highly connected: it has more than one
/// incoming regular 0-edge plus 1-edge in total (the `Fa` function must be
/// reachable both where `F` follows it and where `F` opposes it).
///
/// Candidates are returned most-connected first, truncated to
/// `max_candidates`.
pub fn find_m_dominators(m: &mut Manager, f: Ref, config: &MajConfig) -> Vec<NodeId> {
    if f.is_const() {
        return Vec::new();
    }
    let stats = m.node_stats(f);
    let mut out: Vec<(usize, NodeId)> = Vec::new();
    for &id in stats.nodes() {
        if id == f.node() {
            continue;
        }
        let deg = stats.in_degree(id);
        // Condition (ii): highly connected through regular 0- and 1-edges.
        if deg.zero_regular + deg.one <= 1 {
            continue;
        }
        // Condition (i): skip simple AND/OR/XNOR dominators — those are
        // better served by the standard radix-2 decompositions.
        if classify_dominator(m, f, id).is_some() {
            continue;
        }
        out.push((deg.total(), id));
    }
    out.sort_by_key(|&(deg, id)| (std::cmp::Reverse(deg), id));
    out.truncate(config.max_candidates);
    out.into_iter().map(|(_, id)| id).collect()
}

/// Constructs the initial majority decomposition for a candidate `fa`
/// (phase (β): Theorems 3.2 and 3.3).
pub fn construct_majority(m: &mut Manager, f: Ref, fa: Ref, cofactor: CofactorOp) -> MajCandidate {
    let h = generalized_cofactor(m, f, fa, cofactor);
    let w = generalized_cofactor(m, f, !fa, cofactor);
    let diff = m.xor(fa, f);
    let fb = m.ite(diff, f, h);
    let fc = m.ite(diff, f, w);
    MajCandidate::of(m, [fa, fb, fc])
}

fn generalized_cofactor(m: &mut Manager, f: Ref, c: Ref, op: CofactorOp) -> Ref {
    if c.is_zero() {
        // Empty care set: every value is a don't-care; F itself is as good
        // a representative as any.
        return f;
    }
    match op {
        CofactorOp::Restrict => m.restrict(f, c),
        CofactorOp::Constrain => m.constrain(f, c),
    }
}

/// One cyclic-balancing pass over all couples (phase (γ): Theorem 3.4).
///
/// For each couple `(X, Y)` of the triple, computes `Fx = X ⊕ Y`, splits it
/// into a balanced `(M, K)` with `M ⊕ K = Fx`, and rewrites
/// `X ← ITE(Fx, K, X)`, `Y ← ITE(Fx, M, Y)`. A rewrite is kept only when
/// it shrinks the couple.
pub fn balance_pass(m: &mut Manager, cand: &mut MajCandidate, config: &MajConfig) -> bool {
    let mut improved = false;
    for (xi, yi) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let x = cand.triple[xi];
        let y = cand.triple[yi];
        let fx = m.xor(x, y);
        if fx.is_const() {
            continue;
        }
        let (m_part, k_part) = xor_decompose_balanced(m, fx, &config.search);
        let x_opt = m.ite(fx, k_part, x);
        let y_opt = m.ite(fx, m_part, y);
        let new_sizes = (m.size(x_opt), m.size(y_opt));
        if new_sizes.0 + new_sizes.1 < cand.sizes[xi] + cand.sizes[yi] {
            cand.triple[xi] = x_opt;
            cand.triple[yi] = y_opt;
            cand.sizes[xi] = new_sizes.0;
            cand.sizes[yi] = new_sizes.1;
            improved = true;
        }
    }
    improved
}

/// Runs the full Algorithm 1 on `f`: returns the best majority
/// decomposition over all m-dominator candidates, or `None` when no
/// candidate exists.
///
/// The result is *locally* best (phase (ω)); callers apply the global
/// usefulness test separately (see [`MajDecomposer`]).
pub fn maj_decompose(m: &mut Manager, f: Ref, config: &MajConfig) -> Option<MajCandidate> {
    if m.size(f) < config.min_size {
        return None;
    }
    let candidates = find_m_dominators(m, f, config);
    let mut best: Option<MajCandidate> = None;
    for id in candidates {
        let fa = m.function_of(id);
        let mut cand = construct_majority(m, f, fa, config.cofactor);
        let mut iterations = 0;
        while iterations < config.max_iterations {
            if !balance_pass(m, &mut cand, config) {
                break;
            }
            iterations += 1;
        }
        debug_assert_eq!(
            m.maj(cand.triple[0], cand.triple[1], cand.triple[2]),
            f,
            "majority decomposition must stay valid"
        );
        match &best {
            None => best = Some(cand),
            Some(b) => {
                if cand.beats(b, config.local_k) {
                    best = Some(cand);
                }
            }
        }
    }
    best
}

/// The [`MajorityHook`] implementation that layers Algorithm 1 onto the
/// BDS engine, with the paper's global selection test (§IV-B): a majority
/// decomposition is adopted only when each component is smaller than the
/// original function by the global sizing factor.
#[derive(Debug, Default)]
pub struct MajDecomposer {
    config: MajConfig,
    cache: HashMap<Ref, Option<[Ref; 3]>>,
    /// Manager GC epoch the memo was built against. The memo is keyed by
    /// `Ref` and stores unprotected triples, so after any collection that
    /// reclaimed nodes both keys and values may alias recycled slots — the
    /// whole memo is dropped when the epoch moves.
    gc_epoch: u64,
    /// Number of functions successfully decomposed through MAJ.
    pub accepted: usize,
    /// Number of functions where MAJ was evaluated and rejected.
    pub rejected: usize,
}

impl MajDecomposer {
    /// Creates a decomposer with the given configuration.
    pub fn new(config: MajConfig) -> MajDecomposer {
        MajDecomposer {
            config,
            ..MajDecomposer::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MajConfig {
        &self.config
    }
}

impl MajorityHook for MajDecomposer {
    fn try_majority(&mut self, m: &mut Manager, f: Ref) -> Option<[Ref; 3]> {
        if m.gc_epoch() != self.gc_epoch {
            self.cache.clear();
            self.gc_epoch = m.gc_epoch();
        }
        if let Some(hit) = self.cache.get(&f) {
            return *hit;
        }
        let fsize = m.size(f);
        let result = if fsize < self.config.min_size {
            None
        } else {
            maj_decompose(m, f, &self.config).and_then(|cand| {
                let k = self.config.global_k;
                let fits = cand.sizes.iter().all(|&s| k * s as f64 <= fsize as f64);
                if fits {
                    Some(cand.triple)
                } else {
                    None
                }
            })
        };
        if result.is_some() {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
        self.cache.insert(f, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example: F = ab + bc + ac.
    fn paper_example(m: &mut Manager) -> (Ref, Ref, Ref, Ref) {
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.maj(a, b, c);
        (f, a, b, c)
    }

    #[test]
    fn fig1_m_dominator_is_found() {
        // The BDD of ab+bc+ac (order a<b<c) has exactly one shared node:
        // the bottom variable node, which is the non-trivial m-dominator.
        let mut m = Manager::new();
        let (f, _, _, c) = paper_example(&mut m);
        let config = MajConfig::default();
        let doms = find_m_dominators(&mut m, f, &config);
        assert_eq!(doms.len(), 1, "exactly one non-trivial m-dominator");
        assert_eq!(
            m.function_of(doms[0]),
            c,
            "the shared bottom node computes the literal"
        );
    }

    #[test]
    fn construction_theorem_3_2_yields_valid_decomposition() {
        let mut m = Manager::new();
        let (f, a, _, _) = paper_example(&mut m);
        // Use Fa = a as in the paper's example (§III-C).
        for op in [CofactorOp::Restrict, CofactorOp::Constrain] {
            let cand = construct_majority(&mut m, f, a, op);
            let maj = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
            assert_eq!(maj, f, "Theorem 3.2 construction must be valid ({op:?})");
        }
    }

    #[test]
    fn paper_example_seeds_match() {
        // §III-C example: Fa = a, H = F↓a = b + c, W = F↓a' = bc,
        // Fb = b + c, Fc = bc.
        let mut m = Manager::new();
        let (f, a, b, c) = paper_example(&mut m);
        let h = m.restrict(f, a);
        let or_bc = m.or(b, c);
        assert_eq!(h, or_bc, "F restricted to a=1 region is b+c");
        let w = m.restrict(f, !a);
        let and_bc = m.and(b, c);
        assert_eq!(w, and_bc, "F restricted to a=0 region is bc");
        let cand = construct_majority(&mut m, f, a, CofactorOp::Restrict);
        assert_eq!(cand.triple[1], or_bc);
        assert_eq!(cand.triple[2], and_bc);
    }

    #[test]
    fn balancing_reaches_literal_triple() {
        // §III-D example: starting from (a, b+c, bc), the balancing step
        // must discover Maj(a, b, c).
        let mut m = Manager::new();
        let (f, a, b, c) = paper_example(&mut m);
        let mut cand = construct_majority(&mut m, f, a, CofactorOp::Restrict);
        let config = MajConfig::default();
        while balance_pass(&mut m, &mut cand, &config) {}
        let maj = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
        assert_eq!(maj, f);
        assert_eq!(cand.sizes, [1, 1, 1], "balanced to three literals");
        let mut lits = vec![cand.triple[0], cand.triple[1], cand.triple[2]];
        lits.sort_by_key(|r| r.raw());
        let mut expect = vec![a, b, c];
        expect.sort_by_key(|r| r.raw());
        assert_eq!(lits, expect, "the literals a, b, c are recovered");
    }

    #[test]
    fn full_algorithm_on_paper_example() {
        let mut m = Manager::new();
        let (f, ..) = paper_example(&mut m);
        let cand = maj_decompose(&mut m, f, &MajConfig::default()).expect("decomposes");
        assert_eq!(cand.total(), 3, "Maj(a,b,c) decomposes to three literals");
    }

    #[test]
    fn hook_accepts_majority_rejects_and() {
        let mut m = Manager::new();
        let (f, a, b, _) = paper_example(&mut m);
        let mut hook = MajDecomposer::new(MajConfig::default());
        let triple = hook.try_majority(&mut m, f);
        assert!(triple.is_some(), "majority function must be accepted");
        // A plain conjunction has no m-dominator worth a MAJ node.
        let g = m.and(a, b);
        assert_eq!(hook.try_majority(&mut m, g), None);
        assert!(hook.accepted >= 1 && hook.rejected >= 1);
    }

    #[test]
    fn hook_result_is_cached() {
        let mut m = Manager::new();
        let (f, ..) = paper_example(&mut m);
        let mut hook = MajDecomposer::new(MajConfig::default());
        let first = hook.try_majority(&mut m, f);
        let accepted = hook.accepted;
        let second = hook.try_majority(&mut m, f);
        assert_eq!(first, second);
        assert_eq!(hook.accepted, accepted, "second call served from cache");
    }

    #[test]
    fn wider_majority_structures_decompose() {
        // Maj(x1⊕x2, x3·x4, x5+x6): the components are hidden behind the
        // majority; Algorithm 1 must find a valid triple.
        let mut m = Manager::new();
        let v: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let p = m.xor(v[0], v[1]);
        let q = m.and(v[2], v[3]);
        let r = m.or(v[4], v[5]);
        let f = m.maj(p, q, r);
        let cand = maj_decompose(&mut m, f, &MajConfig::default());
        if let Some(cand) = cand {
            let back = m.maj(cand.triple[0], cand.triple[1], cand.triple[2]);
            assert_eq!(back, f);
            assert!(
                cand.total() <= m.size(f),
                "decomposition should not exceed the original size"
            );
        }
    }

    #[test]
    fn local_selection_metric() {
        let m1 = MajCandidate {
            triple: [Ref::ONE; 3],
            sizes: [2, 2, 2],
        };
        let m2 = MajCandidate {
            triple: [Ref::ONE; 3],
            sizes: [4, 4, 4],
        };
        assert!(m1.beats(&m2, 1.5), "smaller total wins");
        assert!(!m2.beats(&m1, 1.5));
        // Equal totals: the k-condition decides.
        let m3 = MajCandidate {
            triple: [Ref::ONE; 3],
            sizes: [4, 4, 4],
        };
        let m4 = MajCandidate {
            triple: [Ref::ONE; 3],
            sizes: [6, 6, 0],
        };
        assert!(!m3.beats(&m4, 1.5), "k-condition fails against a zero");
    }

    #[test]
    fn constants_and_literals_are_not_decomposed() {
        let mut m = Manager::new();
        let a = m.var(0);
        let config = MajConfig::default();
        assert!(maj_decompose(&mut m, Ref::ONE, &config).is_none());
        assert!(maj_decompose(&mut m, a, &config).is_none());
    }
}
